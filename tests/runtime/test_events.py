"""Event kernel tests: ordering, tie-breaking, cancellation, dispatch.

Also the perf-regression pins for the optimised kernel: the O(1)
live-event counter behind ``len()``/``bool()``, threshold-triggered
compaction of lazily-cancelled heap entries, and a seeded stress that
replays random schedule/cancel/pop interleavings against a brute-force
reference model.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.runtime.clock import SimulationClock
from repro.runtime.events import (
    Event,
    EventScheduler,
    FrameArrival,
    LabelsReady,
    ModelDownloadComplete,
    TrainingDone,
    UploadComplete,
)


class TestEventOrdering:
    def test_pops_in_time_order(self):
        scheduler = EventScheduler()
        scheduler.schedule(Event(time=3.0))
        scheduler.schedule(Event(time=1.0))
        scheduler.schedule(Event(time=2.0))
        times = [event.time for event in scheduler]
        assert times == [1.0, 2.0, 3.0]

    def test_clock_advances_with_pops(self):
        scheduler = EventScheduler()
        scheduler.schedule(Event(time=5.0))
        scheduler.schedule(Event(time=2.0))
        assert scheduler.now == 0.0
        scheduler.pop()
        assert scheduler.now == 2.0
        scheduler.pop()
        assert scheduler.now == 5.0

    def test_priority_breaks_time_ties(self):
        """At the same instant: model update < upload < labels < training < frame."""
        scheduler = EventScheduler()
        frame = scheduler.schedule(FrameArrival(time=1.0))
        training = scheduler.schedule(TrainingDone(time=1.0))
        labels = scheduler.schedule(LabelsReady(time=1.0))
        upload = scheduler.schedule(UploadComplete(time=1.0))
        model = scheduler.schedule(ModelDownloadComplete(time=1.0))
        assert list(scheduler) == [model, upload, labels, training, frame]

    def test_fifo_breaks_full_ties(self):
        scheduler = EventScheduler()
        first = scheduler.schedule(FrameArrival(time=1.0, camera_id=0))
        second = scheduler.schedule(FrameArrival(time=1.0, camera_id=1))
        assert scheduler.pop() is first
        assert scheduler.pop() is second

    def test_model_update_applies_before_same_time_frame(self):
        """The AMS semantics the monolithic loop had: update lands, then infer."""
        scheduler = EventScheduler()
        scheduler.schedule(FrameArrival(time=2.0))
        scheduler.schedule(ModelDownloadComplete(time=2.0))
        kinds = [type(event).__name__ for event in scheduler]
        assert kinds == ["ModelDownloadComplete", "FrameArrival"]


class TestSchedulerAPI:
    def test_cannot_schedule_in_the_past(self):
        scheduler = EventScheduler()
        scheduler.schedule(Event(time=4.0))
        scheduler.pop()
        with pytest.raises(ValueError):
            scheduler.schedule(Event(time=1.0))

    def test_cancelled_events_are_skipped(self):
        scheduler = EventScheduler()
        keep = scheduler.schedule(Event(time=1.0))
        drop = scheduler.schedule(Event(time=2.0))
        last = scheduler.schedule(Event(time=3.0))
        scheduler.cancel(drop)
        assert list(scheduler) == [keep, last]

    def test_len_and_bool_ignore_cancelled(self):
        scheduler = EventScheduler()
        event = scheduler.schedule(Event(time=1.0))
        assert len(scheduler) == 1 and scheduler
        scheduler.cancel(event)
        assert len(scheduler) == 0 and not scheduler

    def test_peek_does_not_pop(self):
        scheduler = EventScheduler()
        event = scheduler.schedule(Event(time=1.0))
        assert scheduler.peek() is event
        assert scheduler.peek() is event
        assert scheduler.pop() is event
        assert scheduler.peek() is None

    def test_run_dispatches_and_allows_rescheduling(self):
        scheduler = EventScheduler()
        seen: list[float] = []

        def handler(event: Event) -> None:
            seen.append(event.time)
            if event.time < 3.0:
                scheduler.schedule(Event(time=event.time + 1.0))

        scheduler.schedule(Event(time=1.0))
        dispatched = scheduler.run(handler)
        assert seen == [1.0, 2.0, 3.0]
        assert dispatched == 3

    def test_run_until_horizon(self):
        scheduler = EventScheduler()
        scheduler.schedule(Event(time=1.0))
        scheduler.schedule(Event(time=10.0))
        seen: list[float] = []
        scheduler.run(lambda event: seen.append(event.time), until=5.0)
        assert seen == [1.0]
        assert len(scheduler) == 1  # the late event stays queued

    def test_uses_external_clock(self):
        clock = SimulationClock(start=1.0)
        scheduler = EventScheduler(clock)
        with pytest.raises(ValueError):
            scheduler.schedule(Event(time=0.5))
        scheduler.schedule(Event(time=2.0))
        scheduler.pop()
        assert clock.now == 2.0


class TestLiveCounter:
    """The O(1) live-event counter behind ``len()`` and ``bool()``."""

    def test_counter_tracks_schedule_cancel_pop(self):
        scheduler = EventScheduler()
        events = [scheduler.schedule(Event(time=float(i + 1))) for i in range(10)]
        assert len(scheduler) == 10
        scheduler.cancel(events[3])
        scheduler.cancel(events[3])  # double-cancel must not double-count
        assert len(scheduler) == 9
        scheduler.pop()
        assert len(scheduler) == 8

    def test_counter_converges_after_bare_flag_cancel(self):
        # Event.cancel() flips only the flag; the counter settles when
        # the dead entry is traversed (pop or compaction) and the queue
        # still delivers exactly the live events
        scheduler = EventScheduler()
        events = [scheduler.schedule(Event(time=float(i + 1))) for i in range(10)]
        events[5].cancel()
        drained = list(scheduler)
        assert events[5] not in drained
        assert len(drained) == 9
        assert len(scheduler) == 0 and not scheduler

    def test_cancelling_delivered_event_does_not_corrupt_counter(self):
        # the InstantTransport pattern: a stale cancel handle may point
        # at an event that was already popped
        scheduler = EventScheduler()
        first = scheduler.schedule(Event(time=1.0))
        scheduler.schedule(Event(time=2.0))
        assert scheduler.pop() is first
        scheduler.cancel(first)  # no-op for the counter: already delivered
        assert len(scheduler) == 1
        scheduler.cancel(first)
        assert len(scheduler) == 1

    def test_len_is_cheap_and_correct_at_100k_events(self):
        """Regression pin for the old O(heap) ``__len__`` scan."""
        scheduler = EventScheduler()
        events = [
            scheduler.schedule(Event(time=float(i % 977) + 1.0))
            for i in range(100_000)
        ]
        for event in events[::2]:
            scheduler.cancel(event)
        # correctness: the counter agrees with a brute-force heap scan
        brute = sum(1 for entry in scheduler._heap if not entry[3].cancelled)
        assert len(scheduler) == brute == 50_000
        # cheapness: 10k backlog queries on a 50k-live queue stay well
        # under the old implementation's multi-second scan cost
        start = time.perf_counter()
        total = 0
        for _ in range(10_000):
            total += len(scheduler)
        elapsed = time.perf_counter() - start
        assert total == 10_000 * 50_000
        assert elapsed < 0.5, f"len() is no longer O(1): {elapsed:.3f}s"


class TestHeapCompaction:
    """Threshold-triggered purge of lazily-cancelled heap entries."""

    def test_compaction_purges_majority_dead_heap(self):
        scheduler = EventScheduler()
        events = [scheduler.schedule(Event(time=float(i + 1))) for i in range(100)]
        for event in events[:60]:
            scheduler.cancel(event)
        # >50% of entries were dead, so the heap physically shrank
        assert scheduler.heap_entries < 100
        assert len(scheduler) == 40
        assert [event.time for event in scheduler] == [
            float(i + 1) for i in range(60, 100)
        ]

    def test_small_heaps_are_not_compacted(self):
        scheduler = EventScheduler()
        events = [scheduler.schedule(Event(time=float(i + 1))) for i in range(10)]
        for event in events:
            scheduler.cancel(event)
        # below the compaction floor the dead entries stay until popped
        assert scheduler.heap_entries == 10
        assert len(scheduler) == 0 and not scheduler

    def test_ordering_survives_compaction(self):
        """Time, priority class and FIFO ties all survive the rebuild."""
        scheduler = EventScheduler()
        keep = []
        drop = []
        for i in range(40):
            at = float(i // 4)  # bursts of ties at the same instant
            keep.append(scheduler.schedule(FrameArrival(time=at, camera_id=i)))
            keep.append(scheduler.schedule(ModelDownloadComplete(time=at, camera_id=i)))
            drop.append(scheduler.schedule(Event(time=at, camera_id=i)))
            drop.append(scheduler.schedule(UploadComplete(time=at, camera_id=i)))
            drop.append(scheduler.schedule(LabelsReady(time=at, camera_id=i)))
            drop.append(scheduler.schedule(TrainingDone(time=at, camera_id=i)))
        for event in drop:  # a strict majority: compaction must trigger
            scheduler.cancel(event)
        assert scheduler.heap_entries < len(keep) + len(drop)
        # reference order: time, then priority class, then scheduling FIFO
        expected = sorted(
            keep, key=lambda e: (e.time, e.priority, keep.index(e))
        )
        assert list(scheduler) == expected

    def test_cancel_handles_stay_valid_after_compaction(self):
        scheduler = EventScheduler()
        keep = [scheduler.schedule(Event(time=float(3 * i))) for i in range(60)]
        drop = [scheduler.schedule(Event(time=float(3 * i + 1))) for i in range(140)]
        for event in drop:
            scheduler.cancel(event)  # majority dead: triggers compaction
        assert scheduler.heap_entries < 200
        # a handle to a surviving event still cancels it cleanly
        scheduler.cancel(keep[10])
        times = [event.time for event in scheduler]
        assert keep[10].time not in times
        assert times == sorted(times)
        assert len(times) == 59


class TestSeededKernelStress:
    """Random schedule/cancel/pop interleavings vs a brute-force model."""

    EVENT_CLASSES = [
        Event,
        FrameArrival,
        UploadComplete,
        LabelsReady,
        ModelDownloadComplete,
        TrainingDone,
    ]

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_reference_model(self, seed):
        rng = np.random.default_rng(seed)
        scheduler = EventScheduler()
        live: list[Event] = []
        seq_of: dict[int, int] = {}
        next_seq = 0

        def key(event: Event) -> tuple:
            return (event.time, event.priority, seq_of[id(event)])

        for _ in range(3000):
            choice = rng.random()
            if choice < 0.55 or not live:
                at = scheduler.now + float(rng.uniform(0.0, 10.0))
                cls = self.EVENT_CLASSES[int(rng.integers(len(self.EVENT_CLASSES)))]
                event = scheduler.schedule(cls(time=at))
                seq_of[id(event)] = next_seq
                next_seq += 1
                live.append(event)
            elif choice < 0.85:
                victim = live.pop(int(rng.integers(len(live))))
                scheduler.cancel(victim)
            else:
                expected = min(live, key=key)
                popped = scheduler.pop()
                assert popped is expected, (
                    f"seed {seed}: popped {popped!r}, expected {expected!r}"
                )
                live.remove(expected)
            assert len(scheduler) == len(live)
        # drain: the remaining order matches the reference sort exactly
        assert list(scheduler) == sorted(live, key=key)
        assert len(scheduler) == 0
