"""Event-journal unit tests: serialization, corruption, prefix replay.

The fleet-level determinism checks (two live runs -> byte-identical
journals, replay -> identical result) live in
``tests/core/test_determinism.py``; this module covers the journal
*format* itself — canonical serialization, checksum/version/shape
validation of untrusted files, and the replay cursor's halting and
divergence behaviour — using tiny hand-built journals so failures
point at the journal, not at the simulation.
"""

from __future__ import annotations

import json

import pytest

from repro.runtime.events import Event, FrameArrival, RetryTimer, UploadComplete
from repro.runtime.journal import (
    EventJournal,
    JournalDivergence,
    JournalError,
    canonical_dumps,
    event_record,
    stable_digest,
)


def make_journal(num_events: int = 3, meta: dict | None = None) -> EventJournal:
    """A tiny finished journal of plain kernel events."""
    journal = EventJournal()
    journal.begin(meta if meta is not None else {"kind": "unit", "seed": 7})
    for index in range(num_events):
        journal.record_event(Event(time=float(index), camera_id=index % 2))
    journal.finish("deadbeef")
    return journal


# ---------------------------------------------------------------------------
# canonical serialization
# ---------------------------------------------------------------------------
def test_canonical_dumps_is_key_order_independent():
    assert canonical_dumps({"b": 1, "a": [1.5, None]}) == canonical_dumps(
        {"a": [1.5, None], "b": 1}
    )


def test_canonical_dumps_has_no_whitespace():
    text = canonical_dumps({"a": [1, 2], "b": {"c": 3}})
    assert " " not in text and "\n" not in text


def test_canonical_dumps_rejects_nan():
    with pytest.raises(ValueError):
        canonical_dumps({"x": float("nan")})


def test_stable_digest_discriminates_and_repeats():
    assert stable_digest({"a": 1}) == stable_digest({"a": 1})
    assert stable_digest({"a": 1}) != stable_digest({"a": 2})
    assert len(stable_digest({"a": 1}, length=64)) == 64


def test_serialize_round_trips_bytes():
    journal = make_journal()
    data = journal.serialize()
    restored = EventJournal.deserialize(data)
    assert restored.serialize() == data
    assert restored.num_events == journal.num_events


def test_save_and_load(tmp_path):
    journal = make_journal()
    path = tmp_path / "run.journal.json"
    journal.save(path)
    assert EventJournal.load(path).serialize() == journal.serialize()


def test_event_record_includes_order_and_digest():
    event = UploadComplete(time=1.25, camera_id=3, batch=[], alpha=0.5)
    record = event_record(event, seq=9)
    assert record["seq"] == 9
    assert record["time"] == 1.25
    assert record["type"] == "UploadComplete"
    assert record["camera"] == 3
    assert record["priority"] == UploadComplete.priority
    # payload participates: a different alpha must change the digest
    other = event_record(UploadComplete(time=1.25, camera_id=3, batch=[], alpha=0.6), 9)
    assert record["digest"] != other["digest"]


def test_retry_timer_attempt_participates_in_digest():
    first = event_record(RetryTimer(time=1.0, message_id=4, attempt=1), 0)
    second = event_record(RetryTimer(time=1.0, message_id=4, attempt=2), 0)
    assert first["digest"] != second["digest"]


def test_begin_rejects_unserializable_meta():
    journal = EventJournal()
    with pytest.raises(JournalError, match="meta"):
        journal.begin({"bad": object()})


# ---------------------------------------------------------------------------
# corruption: every damaged file is rejected with a clear error
# ---------------------------------------------------------------------------
def test_truncated_file_is_rejected():
    data = make_journal().serialize()
    with pytest.raises(JournalError, match="not valid JSON"):
        EventJournal.deserialize(data[: len(data) // 2])


def test_non_object_payload_is_rejected():
    with pytest.raises(JournalError, match="JSON object"):
        EventJournal.deserialize(b"[1, 2, 3]")


def test_wrong_version_is_rejected():
    payload = json.loads(make_journal().serialize())
    payload["version"] = 999
    with pytest.raises(JournalError, match="version"):
        EventJournal.deserialize(canonical_dumps(payload).encode())


def test_missing_key_is_rejected():
    payload = json.loads(make_journal().serialize())
    del payload["records"]
    with pytest.raises(JournalError, match="records"):
        EventJournal.deserialize(canonical_dumps(payload).encode())


def test_flipped_record_fails_the_checksum():
    payload = json.loads(make_journal().serialize())
    payload["records"][1]["time"] = 123.0
    with pytest.raises(JournalError, match="checksum"):
        EventJournal.deserialize(canonical_dumps(payload).encode())


def test_tampered_result_fails_the_checksum():
    payload = json.loads(make_journal().serialize())
    payload["result"] = "cafebabe"
    with pytest.raises(JournalError, match="checksum"):
        EventJournal.deserialize(canonical_dumps(payload).encode())


def test_non_contiguous_seq_is_rejected():
    journal = make_journal(num_events=3)
    payload = json.loads(journal.serialize())
    payload["records"][2]["seq"] = 5
    # recompute the checksum so ONLY the seq invariant can reject it
    body = {key: payload[key] for key in ("meta", "records", "result")}
    payload["checksum"] = stable_digest(body, length=64)
    with pytest.raises(JournalError, match="seq"):
        EventJournal.deserialize(canonical_dumps(payload).encode())


def test_corrupt_file_on_disk_is_rejected(tmp_path):
    path = tmp_path / "corrupt.journal.json"
    path.write_bytes(b"{ definitely not a journal")
    with pytest.raises(JournalError):
        EventJournal.load(path)


# ---------------------------------------------------------------------------
# replay cursor behaviour (against a fake session, no simulation needed)
# ---------------------------------------------------------------------------
class FakeSession:
    """Replays a scripted event list through the journal cursor protocol."""

    def __init__(self, events, meta, fingerprint="deadbeef"):
        self.events = events
        self.meta = meta
        self.fingerprint = fingerprint

    def run(self, journal=None):
        journal.begin(self.meta)
        for event in self.events:
            journal.record_event(event)
        journal.finish(self.fingerprint)
        return "result"


def scripted_events(n=3):
    return [Event(time=float(i), camera_id=i % 2) for i in range(n)]


def test_replay_checks_every_event_and_returns_the_result():
    journal = make_journal()
    report = journal.replay(
        lambda: FakeSession(scripted_events(), {"kind": "unit", "seed": 7})
    )
    assert report.result == "result"
    assert not report.halted
    assert report.events_checked == report.total_events == 3


def test_prefix_replay_stops_at_the_right_event():
    journal = make_journal(num_events=5)
    report = journal.replay(
        lambda: FakeSession(scripted_events(5), {"kind": "unit", "seed": 7}),
        stop_after=2,
    )
    assert report.halted
    assert report.events_checked == 2
    assert report.total_events == 5
    # the cursor stops BEFORE dispatching event #2, so the last checked
    # record is seq 1
    assert report.last_record is not None and report.last_record["seq"] == 1


def test_replay_rejects_mismatched_meta():
    journal = make_journal()
    with pytest.raises(JournalDivergence, match="configured differently"):
        journal.replay(lambda: FakeSession(scripted_events(), {"kind": "other"}))


def test_replay_detects_a_diverging_event():
    journal = make_journal()
    events = scripted_events()
    events[1] = Event(time=99.0, camera_id=0)
    with pytest.raises(JournalDivergence, match="seq 1"):
        journal.replay(lambda: FakeSession(events, {"kind": "unit", "seed": 7}))


def test_replay_detects_extra_events():
    journal = make_journal(num_events=2)
    with pytest.raises(JournalDivergence, match="extra event"):
        journal.replay(lambda: FakeSession(scripted_events(3), {"kind": "unit", "seed": 7}))


def test_replay_detects_a_short_run():
    journal = make_journal(num_events=4)
    with pytest.raises(JournalDivergence, match="ended early"):
        journal.replay(lambda: FakeSession(scripted_events(2), {"kind": "unit", "seed": 7}))


def test_replay_detects_a_diverging_fingerprint():
    journal = make_journal()
    with pytest.raises(JournalDivergence, match="fingerprint"):
        journal.replay(
            lambda: FakeSession(
                scripted_events(), {"kind": "unit", "seed": 7}, fingerprint="cafebabe"
            )
        )


def test_unfinished_journal_replays_without_a_fingerprint_check():
    journal = EventJournal()
    journal.begin({"kind": "unit", "seed": 7})
    for event in scripted_events():
        journal.record_event(event)
    # no finish(): a crashed run's journal still replays event-by-event
    report = journal.replay(
        lambda: FakeSession(scripted_events(), {"kind": "unit", "seed": 7})
    )
    assert report.events_checked == 3


def test_record_event_outside_a_run_is_rejected():
    journal = EventJournal()
    with pytest.raises(JournalError, match="begin"):
        journal.record_event(Event(time=0.0))


def test_frame_arrival_record_uses_frame_index():
    class FakeFrame:
        index = 17
        timestamp = 0.5

    record = event_record(
        FrameArrival(time=0.5, camera_id=1, frame=FakeFrame()), seq=0
    )
    other = event_record(FrameArrival(time=0.5, camera_id=1, frame=None), seq=0)
    assert record["digest"] != other["digest"]
