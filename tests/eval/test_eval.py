"""Tests for the experiment harness (runner, result records, CDF helpers)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval import (
    ExperimentSettings,
    cdf_points,
    compare_strategies,
    format_comparison_table,
    format_table,
    gain_cdf,
    prepare_student,
    run_strategy,
)
from repro.video import build_dataset


@pytest.fixture(scope="module")
def tiny_settings():
    return ExperimentSettings(
        num_frames=240,
        eval_stride=5,
        pretrain_images=40,
        pretrain_epochs=2,
        map_window=5,
        replay_seed_images=6,
        seed=1,
    )


@pytest.fixture(scope="module")
def tiny_student(tiny_settings):
    return prepare_student(tiny_settings)


class TestExperimentSettings:
    def test_defaults_valid(self):
        settings = ExperimentSettings()
        assert settings.shoggoth_config().eval_stride == settings.eval_stride

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentSettings(num_frames=0)
        with pytest.raises(ValueError):
            ExperimentSettings(replay_seed_images=-1)


class TestPrepareStudent:
    def test_pretrains_and_caches(self, tiny_settings, tmp_path):
        cache = str(tmp_path / "student.npz")
        first = prepare_student(tiny_settings, cache_path=cache)
        second = prepare_student(tiny_settings, cache_path=cache)
        x = np.random.default_rng(0).random((1, 3, 32, 32))
        first.model.eval(), second.model.eval()
        assert np.allclose(first.forward(x), second.forward(x))


class TestRunStrategy:
    def test_result_fields(self, tiny_settings, tiny_student):
        dataset = build_dataset("kitti", num_frames=tiny_settings.num_frames)
        result = run_strategy("edge_only", dataset, tiny_student, settings=tiny_settings)
        assert result.strategy == "edge_only"
        assert result.dataset == "kitti"
        assert 0.0 <= result.map50 <= 1.0
        assert result.map50_percent == pytest.approx(result.map50 * 100)
        assert result.windowed_map.ndim == 1
        row = result.row()
        assert "mAP@0.5 (%)" in row and "Up BW (Kbps)" in row

    def test_shoggoth_run_produces_training_sessions(self, tiny_settings, tiny_student):
        dataset = build_dataset("detrac", num_frames=tiny_settings.num_frames)
        result = run_strategy("shoggoth", dataset, tiny_student, settings=tiny_settings)
        assert result.num_training_sessions >= 1
        assert result.uplink_kbps > 0

    def test_original_student_not_mutated(self, tiny_settings, tiny_student):
        dataset = build_dataset("detrac", num_frames=tiny_settings.num_frames)
        before = {k: v.copy() for k, v in tiny_student.state_dict().items()}
        run_strategy("shoggoth", dataset, tiny_student, settings=tiny_settings)
        after = tiny_student.state_dict()
        assert all(np.allclose(before[k], after[k]) for k in before)

    def test_compare_strategies_subset(self, tiny_settings, tiny_student):
        dataset = build_dataset("kitti", num_frames=tiny_settings.num_frames)
        results = compare_strategies(
            dataset, tiny_student, strategy_names=["edge_only", "cloud_only"],
            settings=tiny_settings,
        )
        assert set(results) == {"edge_only", "cloud_only"}
        assert results["cloud_only"].map50 >= results["edge_only"].map50


class TestFormatting:
    def test_format_table(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}]
        text = format_table(rows, title="T")
        assert "T" in text and "a" in text and "22" in text

    def test_format_empty(self):
        assert "(no rows)" in format_table([], title="T")

    def test_format_comparison(self, tiny_settings, tiny_student):
        dataset = build_dataset("kitti", num_frames=tiny_settings.num_frames)
        result = run_strategy("edge_only", dataset, tiny_student, settings=tiny_settings)
        text = format_comparison_table([result], title="Table I")
        assert "edge_only" in text


class TestCDF:
    def test_gain_cdf(self):
        gains = gain_cdf(np.array([0.5, 0.6, 0.7]), np.array([0.4, 0.6, 0.5]))
        assert np.allclose(gains, [0.1, 0.0, 0.2])

    def test_gain_cdf_mismatched_lengths(self):
        gains = gain_cdf(np.array([0.5, 0.6]), np.array([0.4]))
        assert gains.shape == (1,)

    def test_cdf_points_monotone(self):
        x, y = cdf_points(np.array([0.3, 0.1, 0.2]))
        assert np.all(np.diff(x) >= 0)
        assert y[-1] == pytest.approx(1.0)

    def test_cdf_points_empty(self):
        x, y = cdf_points(np.zeros(0))
        assert x.size == 0 and y.size == 0
