"""Tests for box geometry, NMS, matching and evaluation metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detection import (
    Detection,
    average_precision,
    evaluate_average_iou,
    evaluate_map,
    iou_matrix,
    iou_xyxy,
    label_consistency_loss,
    match_greedy,
    nms,
    windowed_map,
)
from repro.video import GroundTruthBox


def det(class_id=0, cx=0.5, cy=0.5, w=0.2, h=0.2, score=0.9):
    return Detection(class_id=class_id, cx=cx, cy=cy, w=w, h=h, score=score)


def gt(class_id=0, cx=0.5, cy=0.5, w=0.2, h=0.2):
    return GroundTruthBox(class_id=class_id, cx=cx, cy=cy, w=w, h=h)


class TestIoU:
    def test_identical_boxes(self):
        assert iou_xyxy((0, 0, 1, 1), (0, 0, 1, 1)) == pytest.approx(1.0)

    def test_disjoint_boxes(self):
        assert iou_xyxy((0, 0, 0.4, 0.4), (0.6, 0.6, 1, 1)) == 0.0

    def test_half_overlap(self):
        assert iou_xyxy((0, 0, 1, 1), (0.5, 0, 1.5, 1)) == pytest.approx(1 / 3)

    def test_degenerate_box(self):
        assert iou_xyxy((0, 0, 0, 0), (0, 0, 1, 1)) == 0.0

    def test_iou_matrix_shape(self):
        m = iou_matrix([det(), det(cx=0.2)], [gt(), gt(cx=0.8), gt(cx=0.2)])
        assert m.shape == (2, 3)
        assert m[0, 0] > 0.9

    def test_iou_matrix_empty(self):
        assert iou_matrix([], [gt()]).shape == (0, 1)

    @settings(deadline=None, max_examples=30)
    @given(
        cx=st.floats(0.2, 0.8), cy=st.floats(0.2, 0.8),
        w=st.floats(0.05, 0.3), h=st.floats(0.05, 0.3),
    )
    def test_iou_symmetric_and_bounded(self, cx, cy, w, h):
        a = (cx - w / 2, cy - h / 2, cx + w / 2, cy + h / 2)
        b = (0.3, 0.3, 0.7, 0.7)
        assert iou_xyxy(a, b) == pytest.approx(iou_xyxy(b, a))
        assert 0.0 <= iou_xyxy(a, b) <= 1.0


class TestNMS:
    def test_suppresses_duplicates(self):
        detections = [det(score=0.9), det(score=0.8, cx=0.51), det(cx=0.9, score=0.7)]
        kept = nms(detections, iou_threshold=0.5)
        assert len(kept) == 2
        assert kept[0].score == 0.9

    def test_keeps_different_classes(self):
        detections = [det(class_id=0, score=0.9), det(class_id=1, score=0.8)]
        assert len(nms(detections)) == 2

    def test_empty(self):
        assert nms([]) == []

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            nms([det()], iou_threshold=0.0)


class TestMatching:
    def test_greedy_matches_best(self):
        detections = [det(score=0.9), det(cx=0.9, score=0.8)]
        ground_truth = [gt(), gt(cx=0.9)]
        matches = match_greedy(detections, ground_truth)
        assert len(matches) == 2

    def test_class_aware(self):
        matches = match_greedy([det(class_id=1)], [gt(class_id=0)])
        assert matches == []

    def test_each_gt_matched_once(self):
        detections = [det(score=0.9), det(score=0.8, cx=0.52)]
        matches = match_greedy(detections, [gt()])
        assert len(matches) == 1


class TestAveragePrecision:
    def test_perfect_detector(self):
        ap = average_precision(np.array([0.9, 0.8]), np.array([True, True]), 2)
        assert ap == pytest.approx(1.0)

    def test_all_false_positives(self):
        ap = average_precision(np.array([0.9, 0.8]), np.array([False, False]), 2)
        assert ap == 0.0

    def test_no_ground_truth(self):
        assert average_precision(np.array([0.9]), np.array([True]), 0) == 0.0

    def test_no_detections(self):
        assert average_precision(np.zeros(0), np.zeros(0, dtype=bool), 3) == 0.0

    def test_partial(self):
        ap = average_precision(np.array([0.9, 0.8]), np.array([True, False]), 2)
        assert 0.0 < ap < 1.0


class TestEvaluateMAP:
    def test_perfect_predictions(self):
        frames_gt = [[gt()], [gt(cx=0.3), gt(class_id=1, cx=0.7)]]
        frames_det = [[det(score=0.95)], [det(cx=0.3, score=0.9), det(class_id=1, cx=0.7, score=0.9)]]
        result = evaluate_map(frames_det, frames_gt)
        assert result.map50 == pytest.approx(1.0)
        assert result.num_ground_truth == 3

    def test_missing_detections_reduce_map(self):
        frames_gt = [[gt(), gt(cx=0.2)]]
        frames_det = [[det(score=0.9)]]
        assert 0.0 < evaluate_map(frames_det, frames_gt).map50 < 1.0

    def test_false_positives_reduce_map(self):
        frames_gt = [[gt()]]
        clean = evaluate_map([[det(score=0.9)]], frames_gt).map50
        noisy = evaluate_map(
            [[det(score=0.95, cx=0.9), det(score=0.9)]], frames_gt
        ).map50
        assert noisy < clean

    def test_skips_absent_classes(self):
        result = evaluate_map([[det(class_id=0, score=0.9)]], [[gt(class_id=0)]])
        assert set(result.per_class_ap) == {0}

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            evaluate_map([[]], [[], []])

    def test_wrong_class_detection_gets_zero(self):
        result = evaluate_map([[det(class_id=1, score=0.9)]], [[gt(class_id=0)]])
        assert result.map50 == 0.0


class TestAverageIoU:
    def test_perfect_localisation(self):
        assert evaluate_average_iou([[det()]], [[gt()]]) == pytest.approx(1.0, abs=1e-6)

    def test_missed_objects_count_as_zero(self):
        value = evaluate_average_iou([[det()]], [[gt(), gt(cx=0.1)]])
        assert 0.4 < value < 0.6

    def test_empty_frames(self):
        assert evaluate_average_iou([[]], [[]]) == 0.0


class TestWindowedMAP:
    def test_window_count(self):
        frames_gt = [[gt()]] * 10
        frames_det = [[det(score=0.9)]] * 10
        values = windowed_map(frames_det, frames_gt, window=5)
        assert values.shape == (2,)
        assert np.allclose(values, 1.0)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            windowed_map([], [], window=0)


class TestLabelConsistency:
    def test_identical_labels_zero(self):
        labels = [gt(), gt(cx=0.2, class_id=1)]
        assert label_consistency_loss(labels, labels) == 0.0

    def test_disjoint_labels_one(self):
        assert label_consistency_loss([gt(cx=0.1)], [gt(cx=0.9)]) == pytest.approx(1.0)

    def test_empty_both(self):
        assert label_consistency_loss([], []) == 0.0

    def test_one_empty(self):
        assert label_consistency_loss([gt()], []) == 1.0

    def test_partial_overlap(self):
        value = label_consistency_loss([gt(), gt(cx=0.9)], [gt()])
        assert 0.0 < value < 1.0

    def test_class_change_counts_as_change(self):
        assert label_consistency_loss([gt(class_id=0)], [gt(class_id=1)]) == 1.0
