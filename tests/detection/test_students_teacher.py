"""Tests for the grid codec, student detector, teacher oracle and pretraining."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detection import (
    GridCodec,
    StudentConfig,
    StudentDetector,
    TeacherConfig,
    TeacherDetector,
    evaluate_map,
    generate_offline_dataset,
    pretrain_student,
)
from repro.detection.grid import CELL_CHANNELS
from repro.video import DAY_SUNNY, NIGHT, GroundTruthBox, FrameRenderer, RenderConfig
from repro.video.stream import Frame


def make_frame(boxes, domain=DAY_SUNNY, index=0, seed=0):
    renderer = FrameRenderer(RenderConfig(seed=seed))
    image = renderer.render(list(boxes), domain)
    return Frame(
        index=index,
        timestamp=index / 30.0,
        image=image,
        ground_truth=tuple(boxes),
        domain_name=domain.name,
        motion=0.1,
    )


class TestGridCodec:
    def test_encode_marks_correct_cell(self):
        codec = GridCodec(grid_size=8)
        targets = codec.encode([GroundTruthBox(1, 0.5, 0.5, 0.2, 0.2)])
        assert targets.num_positives == 1
        assert targets.objectness[4, 4] == 1.0
        assert targets.class_ids[4, 4] == 1

    def test_encode_empty(self):
        targets = GridCodec(8).encode([])
        assert targets.num_positives == 0

    def test_encode_ignores_out_of_frame_centres(self):
        targets = GridCodec(8).encode([GroundTruthBox(0, 1.5, 0.5, 0.2, 0.2)])
        assert targets.num_positives == 0

    def test_collision_keeps_larger_object(self):
        codec = GridCodec(4)
        small = GroundTruthBox(0, 0.5, 0.5, 0.05, 0.05)
        large = GroundTruthBox(1, 0.52, 0.52, 0.3, 0.3)
        targets = codec.encode([small, large])
        assert targets.num_positives == 1
        assert targets.class_ids[2, 2] == 1

    def test_decode_roundtrip(self):
        """Encoding a box then building an ideal output map should decode back."""
        codec = GridCodec(8)
        box = GroundTruthBox(2, 0.53, 0.47, 0.2, 0.15)
        targets = codec.encode([box])
        output = np.full((CELL_CHANNELS, 8, 8), -8.0)
        row, col = np.argwhere(targets.objectness)[0]
        output[0, row, col] = 8.0  # objectness logit
        output[1 + 2, row, col] = 8.0  # class logit
        dx, dy, lw, lh = targets.boxes[row, col]
        # invert the sigmoid used for centre offsets
        output[1 + 4 + 0, row, col] = np.log(dx / (1 - dx + 1e-9) + 1e-9)
        output[1 + 4 + 1, row, col] = np.log(dy / (1 - dy + 1e-9) + 1e-9)
        output[1 + 4 + 2, row, col] = lw
        output[1 + 4 + 3, row, col] = lh
        detections = codec.decode(output, conf_threshold=0.5)
        assert len(detections) == 1
        decoded = detections[0]
        assert decoded.class_id == 2
        assert decoded.cx == pytest.approx(box.cx, abs=0.02)
        assert decoded.cy == pytest.approx(box.cy, abs=0.02)
        assert decoded.w == pytest.approx(box.w, abs=0.03)

    def test_decode_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            GridCodec(8).decode(np.zeros((3, 8, 8)))

    def test_targets_to_arrays(self):
        codec = GridCodec(4)
        targets = codec.encode_batch([[GroundTruthBox(0, 0.5, 0.5, 0.2, 0.2)], []])
        obj, cls, boxes = codec.targets_to_arrays(targets)
        assert obj.shape == (2, 4, 4) and cls.shape == (2, 4, 4) and boxes.shape == (2, 4, 4, 4)


class TestStudentDetector:
    def test_forward_shape(self):
        student = StudentDetector(StudentConfig(seed=1))
        out = student.forward(np.random.default_rng(0).random((2, 3, 32, 32)))
        assert out.shape == (2, CELL_CHANNELS, 8, 8)

    def test_rejects_wrong_input(self):
        student = StudentDetector()
        with pytest.raises(ValueError):
            student.forward(np.zeros((1, 3, 16, 16)))

    def test_detect_returns_detections(self):
        student = StudentDetector(StudentConfig(seed=1))
        detections = student.detect(np.random.default_rng(0).random((3, 32, 32)), conf_threshold=0.01)
        assert isinstance(detections, list)

    def test_clone_preserves_outputs(self):
        student = StudentDetector(StudentConfig(seed=1))
        clone = student.clone()
        x = np.random.default_rng(0).random((1, 3, 32, 32))
        student.model.eval(), clone.model.eval()
        assert np.allclose(student.forward(x), clone.forward(x))

    def test_save_load_roundtrip(self, tmp_path):
        student = StudentDetector(StudentConfig(seed=1))
        path = str(tmp_path / "student.npz")
        student.save(path)
        other = StudentDetector(StudentConfig(seed=99))
        other.load(path)
        x = np.random.default_rng(0).random((1, 3, 32, 32))
        student.model.eval(), other.model.eval()
        assert np.allclose(student.forward(x), other.forward(x))

    def test_detection_loss_decreases_with_training(self):
        student = StudentDetector(StudentConfig(seed=1))
        rng = np.random.default_rng(0)
        images = rng.random((8, 3, 32, 32))
        labels = [[GroundTruthBox(0, 0.5, 0.5, 0.2, 0.2)] for _ in range(8)]
        targets = student.codec.encode_batch(labels)
        from repro.nn.optim import SGD

        opt = SGD(student.model.parameters(), lr=0.05, momentum=0.9)
        student.model.train()
        losses = []
        for _ in range(12):
            opt.zero_grad()
            out = student.model.forward(images)
            loss, grad = student.detection_loss(out, targets)
            student.model.backward(grad)
            opt.step()
            losses.append(loss)
        assert losses[-1] < losses[0]

    def test_detection_loss_shape_mismatch(self):
        student = StudentDetector()
        with pytest.raises(ValueError):
            student.detection_loss(np.zeros((1, CELL_CHANNELS, 8, 8)), [])

    def test_layer_macs_and_fraction(self):
        student = StudentDetector()
        macs = student.layer_macs()
        assert macs["conv1"] > 0
        assert student.compute_fraction_before("input") == 0.0
        pool_fraction = student.compute_fraction_before("pool")
        conv_fraction = student.compute_fraction_before("conv5_4")
        assert 0.0 < conv_fraction < pool_fraction < 1.0
        with pytest.raises(KeyError):
            student.compute_fraction_before("bogus")

    def test_model_bytes(self):
        student = StudentDetector()
        assert student.model_bytes() == student.num_parameters() * 4

    def test_norm_choice(self):
        brn = StudentDetector(StudentConfig(norm="brn"))
        bn = StudentDetector(StudentConfig(norm="bn"))
        from repro import nn

        assert isinstance(brn.model["norm1"], nn.BatchRenorm2d)
        assert isinstance(bn.model["norm1"], nn.BatchNorm2d)
        with pytest.raises(ValueError):
            StudentConfig(norm="layernorm")

    def test_config_validation(self):
        with pytest.raises(ValueError):
            StudentConfig(image_size=30, grid_size=8)


class TestTeacherDetector:
    def test_labels_near_ground_truth_in_easy_domain(self):
        teacher = TeacherDetector(TeacherConfig(seed=1))
        boxes = [GroundTruthBox(0, 0.5, 0.5, 0.2, 0.2), GroundTruthBox(1, 0.2, 0.3, 0.25, 0.2)]
        frame = make_frame(boxes)
        detections_per_frame = []
        gts = []
        for i in range(40):
            detections_per_frame.append(teacher.detect(frame, DAY_SUNNY))
            gts.append(list(boxes))
        result = evaluate_map(detections_per_frame, gts)
        assert result.map50 > 0.75

    def test_harder_domain_has_lower_quality(self):
        teacher = TeacherDetector(TeacherConfig(seed=2))
        boxes = [GroundTruthBox(0, 0.5, 0.5, 0.2, 0.2)]
        frame = make_frame(boxes)
        day_missing = sum(len(teacher.detect(frame, DAY_SUNNY)) == 0 for _ in range(300))
        night_missing = sum(len(teacher.detect(frame, NIGHT)) == 0 for _ in range(300))
        assert night_missing > day_missing

    def test_label_frames_batch(self):
        teacher = TeacherDetector()
        frame = make_frame([GroundTruthBox(0, 0.5, 0.5, 0.2, 0.2)])
        out = teacher.label_frames([frame, frame], [DAY_SUNNY, NIGHT])
        assert len(out) == 2
        with pytest.raises(ValueError):
            teacher.label_frames([frame], [DAY_SUNNY, NIGHT])

    def test_cost_properties(self):
        teacher = TeacherDetector()
        assert teacher.inference_seconds > 0
        assert teacher.num_parameters > 10_000_000

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TeacherConfig(base_miss_rate=-0.1)
        with pytest.raises(ValueError):
            TeacherConfig(min_confidence=0.9, max_confidence=0.5)


class TestPretraining:
    def test_generate_offline_dataset(self):
        images, labels = generate_offline_dataset(20, seed=1)
        assert images.shape == (20, 3, 32, 32)
        assert len(labels) == 20

    def test_generate_invalid(self):
        with pytest.raises(ValueError):
            generate_offline_dataset(0)

    def test_pretraining_reduces_loss_and_detects(self):
        images, labels = generate_offline_dataset(80, seed=2)
        student = StudentDetector(StudentConfig(seed=4))
        result = pretrain_student(student, images, labels, epochs=4, batch_size=16, lr=0.05)
        assert result.final_loss < result.loss_history[0]
        assert result.num_images == 80

    def test_pretrain_validation(self):
        student = StudentDetector()
        with pytest.raises(ValueError):
            pretrain_student(student, np.zeros((2, 3, 32, 32)), [[]], epochs=1)
