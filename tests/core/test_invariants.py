"""Randomized simulation-invariant harness over the policy grid.

The scheduler × placement × autoscaler × worker-mix grid is now far too
large for per-policy golden pins, so this harness samples ~30 seeded
random fleet configurations across all four axes (plus revocation
processes and recovery modes) and asserts the *conservation laws* every
configuration must obey, whatever the policies do:

* **frame conservation** — every sampled upload is labeled exactly
  once, explicitly rejected at admission, or revoked-and-relabeled and
  then still labeled exactly once (nothing lost, nothing duplicated);
* **capacity conservation** — no worker is ever busy for more
  wall-seconds than it was provisioned, and the provisioned integral
  equals the per-worker and per-tier sums the cost accounting bills;
* **monotone timelines** — per-worker completion order, the provision
  timeline, scaling events and revocation records all advance in
  non-decreasing time, and provisioned counts never go negative;
* **identity** — worker ids are never reused, every completed job is
  completed by exactly one worker, queue delays are non-negative.

Each seed is an independent pytest case, so a failure names the exact
configuration (printed in the assertion message) to replay.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CameraSpec, FleetSession
from repro.core.autoscaling import SloScaler, StepScaler
from repro.core.cluster import REVOCATION_MODES, RevocationProcess
from repro.core.scheduling import PLACEMENTS, SCHEDULERS, WORKER_TIERS
from repro.detection import StudentConfig, StudentDetector, TeacherConfig, TeacherDetector
from repro.runtime.events import Event, EventScheduler
from repro.testing import check_invariants, chaos_scenario, session_from_scenario
from repro.video import build_dataset

from test_scheduling import small_config

NUM_CONFIGS = 30
NUM_CHAOS_CONFIGS = 20
DATASETS = ["detrac", "kitti", "waymo", "stationary"]
STRATEGIES = ["shoggoth", "ams", "shoggoth", "shoggoth"]
TIERS = list(WORKER_TIERS.values())


def sample_config(seed: int) -> dict:
    """Draw one fleet configuration from the full policy grid."""
    rng = np.random.default_rng(1000 + seed)

    def pick(options):
        return options[int(rng.integers(len(options)))]

    num_gpus = int(rng.integers(1, 4))
    config = {
        "seed": seed,
        "scheduler": pick(sorted(SCHEDULERS)),
        "placement": pick(sorted(PLACEMENTS)),
        "num_gpus": num_gpus,
        "worker_specs": [pick(TIERS) for _ in range(num_gpus)],
        "revocation_mode": pick(REVOCATION_MODES),
        "n_cameras": int(rng.integers(3, 6)),
        "num_frames": 120,
    }
    has_spot = any(spec.preemptible for spec in config["worker_specs"])
    config["revocations"] = (
        RevocationProcess(
            mean_uptime_seconds=float(rng.uniform(1.5, 6.0)), seed=seed
        )
        if has_spot and rng.random() < 0.8
        else None
    )
    autoscaler = pick(["none", "none", "slo", "slo", "step"])
    if autoscaler == "slo":
        spot_out = rng.random() < 0.5
        config["autoscaler"] = SloScaler(
            slo_seconds=float(rng.uniform(0.05, 0.5)),
            interval_seconds=0.5,
            window_seconds=2.0,
            cooldown_seconds=0.5,
            min_gpus=1,
            max_gpus=num_gpus + 2,
            sustained_idle_ticks=2,
            scale_out_spec=WORKER_TIERS["spot"] if spot_out else None,
            revocation_headroom=1 if spot_out else 0,
        )
    elif autoscaler == "step":
        config["autoscaler"] = StepScaler(
            high_utilization=0.8,
            low_utilization=0.3,
            interval_seconds=0.5,
            cooldown_seconds=0.5,
            min_gpus=1,
            max_gpus=num_gpus + 2,
        )
    else:
        config["autoscaler"] = None
    return config


def run_config(config: dict):
    cameras = [
        CameraSpec(
            name=f"cam{i}",
            dataset=build_dataset(DATASETS[i % 4], num_frames=config["num_frames"]),
            strategy=STRATEGIES[i % 4],
            seed=i,
        )
        for i in range(config["n_cameras"])
    ]
    session = FleetSession(
        cameras,
        student=StudentDetector(StudentConfig(seed=5)),
        teacher=TeacherDetector(TeacherConfig(seed=9)),
        config=small_config(),
        scheduler=config["scheduler"],
        placement=config["placement"],
        num_gpus=config["num_gpus"],
        worker_specs=config["worker_specs"],
        revocations=config["revocations"],
        revocation_mode=config["revocation_mode"],
        autoscaler=config["autoscaler"],
    )
    return session, session.run()


def describe(config: dict) -> str:
    """Replay line shown on any invariant failure."""
    mix = "+".join(spec.tier for spec in config["worker_specs"])
    scaler = config["autoscaler"].name if config["autoscaler"] else "none"
    revoker = (
        f"uptime~{config['revocations'].mean_uptime_seconds:.2f}s"
        if config["revocations"]
        else "none"
    )
    return (
        f"seed={config['seed']} scheduler={config['scheduler']} "
        f"placement={config['placement']} gpus={config['num_gpus']} "
        f"mix={mix} autoscaler={scaler} revocations={revoker} "
        f"mode={config['revocation_mode']} cams={config['n_cameras']}"
    )


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_kernel_conservation_under_churn(seed):
    """Seeded event-kernel stress alongside the fleet invariants.

    Random schedule/cancel/pop interleavings must conserve events
    (scheduled == dispatched + cancelled, nothing lost or duplicated),
    keep the O(1) live counter exact at every step, and keep cancelled
    heap garbage bounded by the compaction threshold.
    """
    rng = np.random.default_rng(2000 + seed)
    scheduler = EventScheduler()
    live: list[Event] = []
    cancelled = 0
    dispatched = 0
    for _ in range(5000):
        roll = rng.random()
        if roll < 0.5 or not live:
            live.append(
                scheduler.schedule(
                    Event(time=scheduler.now + float(rng.uniform(0.0, 5.0)))
                )
            )
        elif roll < 0.8:
            victim = live.pop(int(rng.integers(len(live))))
            scheduler.cancel(victim)
            cancelled += 1
            # right after a cancel, garbage is bounded: either the heap
            # is below the compaction floor, or dead entries are <= half
            garbage = scheduler.heap_entries - len(scheduler)
            assert (
                scheduler.heap_entries < EventScheduler.COMPACTION_MIN_HEAP
                or garbage <= scheduler.heap_entries // 2
            ), f"seed {seed}: {garbage} dead of {scheduler.heap_entries} entries"
        else:
            popped = scheduler.pop()
            assert popped is not None and not popped.cancelled
            live.remove(popped)
            dispatched += 1
        assert len(scheduler) == len(live), "live counter drifted from reality"
    dispatched += sum(1 for _ in scheduler)
    assert scheduler.num_scheduled == dispatched + cancelled, (
        f"seed {seed}: {scheduler.num_scheduled} scheduled but "
        f"{dispatched} dispatched + {cancelled} cancelled"
    )
    assert scheduler.num_dispatched == dispatched
    assert len(scheduler) == 0 and scheduler.heap_entries == 0


@pytest.mark.parametrize("seed", range(NUM_CONFIGS))
def test_simulation_invariants(seed):
    config = sample_config(seed)
    tag = describe(config)
    session, result = run_config(config)
    cluster = session.cluster

    # -- frame conservation ------------------------------------------------
    # fault-aware form: faults may *abandon* uploads (num_abandoned_uploads,
    # zero in this faults-off grid) but can never lose or duplicate one
    sent = sum(entry.session.num_uploads for entry in result.cameras)
    labeled = len(result.queue_waits)
    rejected = result.num_rejected_uploads
    abandoned = result.num_abandoned_uploads
    assert labeled + rejected + abandoned == sent, (
        f"{tag}: {sent} uploads sent but {labeled} labeled + {rejected} "
        f"rejected + {abandoned} abandoned — a revocation or drain lost "
        "or duplicated a job"
    )
    # every completed job was completed by exactly one worker
    all_completed = [
        job for worker in cluster.workers for job in worker.completed_jobs
    ]
    assert len({id(job) for job in all_completed}) == len(all_completed), (
        f"{tag}: a labeling job appears in two workers' completion logs"
    )
    assert all(job.wait_seconds >= -1e-9 for job in all_completed), (
        f"{tag}: negative queue delay — service started before arrival"
    )
    # revoked-and-relabeled work is counted, and only when revocations hit
    recovered = result.num_relabeled_jobs + result.num_checkpoint_resumed_jobs
    assert recovered == sum(
        record.jobs_in_flight for record in result.revocation_records
    ), f"{tag}: relabel/resume counters disagree with the revocation log"
    if not result.revocation_records:
        assert recovered == 0 and result.wasted_gpu_seconds == 0.0, (
            f"{tag}: revocation accounting moved without any revocation"
        )

    # -- capacity conservation --------------------------------------------
    horizon = result.duration_seconds
    provisioned_total = 0.0
    for worker in cluster.workers:
        provisioned = cluster.worker_provisioned_seconds(worker, horizon)
        provisioned_total += provisioned
        assert worker.busy_seconds <= provisioned + 1e-6, (
            f"{tag}: worker {worker.worker_id} busy {worker.busy_seconds:.6f}s "
            f"exceeds its provisioned {provisioned:.6f}s"
        )
    assert result.gpu_seconds_provisioned == pytest.approx(
        provisioned_total, abs=1e-6
    ), f"{tag}: provision-log integral disagrees with per-worker lifetimes"
    assert sum(result.gpu_seconds_by_tier.values()) == pytest.approx(
        provisioned_total, abs=1e-6
    ), f"{tag}: per-tier capacity split loses GPU-seconds"
    assert result.dollar_cost >= 0.0
    expected_cost = sum(
        worker.spec.cost_per_gpu_second
        * cluster.worker_provisioned_seconds(worker, horizon)
        for worker in cluster.workers
    )
    assert result.dollar_cost == pytest.approx(expected_cost, abs=1e-6), (
        f"{tag}: dollar cost disagrees with per-worker billing"
    )

    # -- monotone timelines -------------------------------------------------
    for worker in cluster.workers:
        completions = [job.completion for job in worker.completed_jobs]
        assert completions == sorted(completions), (
            f"{tag}: worker {worker.worker_id} completions out of order"
        )
    timeline = cluster.provision_timeline()
    times = [time for time, _ in timeline]
    assert times == sorted(times), f"{tag}: provision timeline not sorted"
    counts = [count for _, count in timeline]
    assert all(count >= 0 for count in counts), (
        f"{tag}: provisioned worker count went negative"
    )
    assert counts[0] >= 1 and max(counts) <= len(cluster.workers), (
        f"{tag}: provision counts outside [1, {len(cluster.workers)}]"
    )
    event_times = [event.time for event in result.scaling_events]
    assert event_times == sorted(event_times), (
        f"{tag}: scaling events out of time order"
    )
    revocation_times = [record.time for record in result.revocation_records]
    assert revocation_times == sorted(revocation_times), (
        f"{tag}: revocation records out of time order"
    )

    # -- identity ------------------------------------------------------------
    ids = [worker.worker_id for worker in cluster.workers]
    assert ids == list(range(len(cluster.workers))), (
        f"{tag}: worker ids reused or renumbered: {ids}"
    )
    assert len(result.worker_specs) == len(cluster.workers)
    for record in result.revocation_records:
        victim = cluster.workers[record.worker_id]
        assert victim.spec.preemptible and victim.revoked, (
            f"{tag}: revocation hit a non-preemptible or non-revoked worker"
        )


def chaos_grid(seed: int) -> dict:
    """One cell of the chaos cross-product: autoscaler × partitions on."""
    return chaos_scenario(seed, partitions=True, autoscaler=True)


def test_chaos_grid_covers_the_fault_axes():
    """The 20-seed window genuinely crosses every axis it claims to.

    Guards the sampling contract: if a draw change silently stopped
    producing autoscaled, batched, partitioned or crashing cells, the
    per-seed invariant cases below would go green while testing nothing.
    """
    scenarios = [chaos_grid(seed) for seed in range(NUM_CHAOS_CONFIGS)]
    axes = {
        "autoscaler": [bool(s["autoscaler"]) for s in scenarios],
        "batching": [bool(s["batching"]) for s in scenarios],
        "partitions": [
            "mean_time_between_partitions" in s["fault_plan"] for s in scenarios
        ],
        "crashes": [
            s["fault_plan"]["mean_time_between_crashes"] is not None
            for s in scenarios
        ],
    }
    for axis, hits in axes.items():
        assert any(hits), f"no scenario in the window exercises {axis}"
        assert not all(hits), f"no scenario in the window runs without {axis}"
    assert any(
        all(column[i] for column in axes.values())
        for i in range(NUM_CHAOS_CONFIGS)
    ), "no scenario crosses autoscaler × batching × partitions × crashes"


@pytest.mark.parametrize("seed", range(NUM_CHAOS_CONFIGS))
def test_chaos_autoscaler_invariants(seed):
    """Conservation laws under autoscaler × partitioned link × batching.

    The faults-off grid above cannot see the crash-vs-drain race or
    queued-not-lost partition semantics; this grid samples seeded cells
    where all of them interact and asserts the same laws via the
    shrinker's oracle (:func:`repro.testing.check_invariants`) — so
    any red cell here is immediately
    ``python -m repro.testing.shrink`` material.
    """
    scenario = chaos_grid(seed)
    tag = f"seed={seed} scenario={scenario}"
    session = session_from_scenario(scenario)
    result = session.run()
    failure = check_invariants(session, result)
    assert failure is None, f"{tag}: invariant broken: {failure}"

    # fault-aware frame conservation, spelled out for a readable failure
    sent = result.sends_by_kind["upload"]
    labeled = len(result.queue_waits)
    assert (
        labeled + result.num_rejected_uploads + result.num_abandoned_uploads
        == sent
    ), f"{tag}: upload conservation broke under faults"

    # crash-vs-drain: each worker crashes at most once (no double
    # preemption), drain-race victims are never restarted, and ids stay
    # append-only through every scale-out, crash and drain
    cluster = session.cluster
    victims = [record.worker_id for record in result.crash_records]
    assert len(set(victims)) == len(victims), (
        f"{tag}: a worker appears twice in the crash log"
    )
    for record in result.crash_records:
        victim = cluster.workers[record.worker_id]
        assert victim.crashed and victim.draining, (
            f"{tag}: crash victim {record.worker_id} not marked crashed"
        )
        if record.replacement_id is None:
            # the victim lost the crash-vs-drain race: it was already
            # draining out of a scale-down, so no replacement started
            assert victim.retired_at == pytest.approx(record.time), (
                f"{tag}: drain-race victim kept billing past its crash"
            )
        else:
            assert (
                cluster.workers[record.replacement_id].spec == victim.spec
            ), f"{tag}: crash replacement changed hardware spec"
    ids = [worker.worker_id for worker in cluster.workers]
    assert ids == list(range(len(cluster.workers))), (
        f"{tag}: worker ids reused or renumbered: {ids}"
    )
    assert result.dollar_cost >= 0.0


def region_chaos_grid(seed: int) -> dict:
    """One cell of the federated cross-product: every chaos axis on."""
    return chaos_scenario(seed, partitions=True, autoscaler=True, regions=True)


def test_region_chaos_grid_covers_the_region_axes():
    """The federated 20-seed window genuinely varies the region axes.

    Same sampling-contract guard as the single-cluster grid: region
    count, selector choice, WAN egress pricing, the region-outage
    process and per-region WAN partitions must all actually appear in
    the window, and at least one cell crosses outages × partitions ×
    autoscaler × batching.
    """
    scenarios = [region_chaos_grid(seed) for seed in range(NUM_CHAOS_CONFIGS)]
    assert all(s.get("regions") for s in scenarios)
    assert all(len(s["regions"]["wan"]) >= 2 for s in scenarios), (
        "a federated cell collapsed to a single region"
    )
    assert {len(s["regions"]["wan"]) for s in scenarios} >= {2, 3}
    assert len({s["regions"]["selector"] for s in scenarios}) >= 2, (
        "the window exercises only one region selector"
    )
    assert any(
        wan["cost_per_gb"] > 0.0 for s in scenarios for wan in s["regions"]["wan"]
    ), "no region in the window charges WAN egress"
    axes = {
        "region_outages": [
            "mean_time_between_region_outages" in s["fault_plan"]
            for s in scenarios
        ],
        "partitions": [
            "mean_time_between_partitions" in s["fault_plan"] for s in scenarios
        ],
    }
    for axis, hits in axes.items():
        assert any(hits), f"no federated scenario exercises {axis}"
        assert not all(hits), f"no federated scenario runs without {axis}"
    assert any(
        axes["region_outages"][i]
        and axes["partitions"][i]
        and scenarios[i]["autoscaler"]
        and scenarios[i]["batching"]
        for i in range(NUM_CHAOS_CONFIGS)
    ), "no cell crosses outages × partitions × autoscaler × batching"


@pytest.mark.parametrize("seed", range(NUM_CHAOS_CONFIGS))
def test_region_chaos_invariants(seed):
    """Conservation laws under region outages × WAN partitions × chaos.

    The federated equivalent of the grid above: every cell homes the
    fleet across 2–3 WAN-profiled regions, cuts WAN links per region,
    tears whole regions down and fails cameras over — and the same
    laws must hold across the union of clusters: no upload lost or
    duplicated across a migration, every job labeled exactly once, no
    region ever reuses a worker id, and the billed dollar total closes
    against per-region compute plus WAN egress.
    """
    scenario = region_chaos_grid(seed)
    tag = f"seed={seed} scenario={scenario}"
    session = session_from_scenario(scenario)
    result = session.run()
    failure = check_invariants(session, result)
    assert failure is None, f"{tag}: invariant broken: {failure}"

    # frame conservation across migrations: a camera re-homed mid-run
    # must not lose or double-label uploads already in flight
    sent = result.sends_by_kind["upload"]
    labeled = len(result.queue_waits)
    assert (
        labeled + result.num_rejected_uploads + result.num_abandoned_uploads
        == sent
    ), f"{tag}: upload conservation broke across region migrations"

    # exactly-once labeling across the union of regional clusters
    all_completed = [
        job
        for cluster in session.clusters
        for worker in cluster.workers
        for job in worker.completed_jobs
    ]
    assert len({id(job) for job in all_completed}) == len(all_completed), (
        f"{tag}: a job appears in two regions' completion logs"
    )
    assert len(all_completed) == labeled, (
        f"{tag}: cluster completion logs disagree with the fleet result"
    )

    # ids stay append-only inside every region (never reused, never
    # renumbered across failover teardowns and heals)
    for region_index, cluster in enumerate(session.clusters):
        ids = [worker.worker_id for worker in cluster.workers]
        assert ids == list(range(len(cluster.workers))), (
            f"{tag}: region {region_index} reused worker ids: {ids}"
        )

    # cost-accounting closure: the one billed total is exactly the sum
    # of every region's provisioned compute plus every link's egress
    federation = session.federation
    expected = federation.compute_dollar_cost(
        result.duration_seconds
    ) + federation.wan_dollar_cost()
    assert result.dollar_cost == pytest.approx(expected, abs=1e-6), (
        f"{tag}: dollar cost does not close over compute + WAN"
    )
    assert result.wan_dollar_cost == pytest.approx(
        sum(m["wan_dollar_cost"] for m in result.region_metrics), abs=1e-9
    ), f"{tag}: per-region WAN billing loses dollars"

    # homing bookkeeping: every camera homed exactly somewhere, and
    # every migration left one region and entered another
    assert (
        sum(m["num_cameras_homed"] for m in result.region_metrics)
        == scenario["n_cameras"]
    ), f"{tag}: camera homing lost or duplicated a camera"
    migrations_in = sum(m["num_migrations_in"] for m in result.region_metrics)
    migrations_away = sum(m["num_migrations_away"] for m in result.region_metrics)
    assert (
        migrations_in == migrations_away == result.num_region_migrations
    ), f"{tag}: migration in/away totals disagree"
