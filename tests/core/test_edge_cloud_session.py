"""Integration tests: edge device, cloud server, sessions and strategies.

These use short streams and an untrained (or lightly-trained) student so the
whole file runs in seconds while still exercising every moving part of the
collaborative pipeline.
"""

from __future__ import annotations

import pytest

from repro.core import (
    AdaptiveTrainer,
    CloudServer,
    CollaborativeSession,
    EdgeDevice,
    SessionOptions,
    ShoggothConfig,
    build_strategy,
    STRATEGIES,
)
from repro.core.strategies import FixedRateShoggothStrategy
from repro.detection import StudentConfig, StudentDetector, TeacherConfig, TeacherDetector
from repro.video import build_dataset
from repro.video.datasets import make_stationary


@pytest.fixture(scope="module")
def student():
    return StudentDetector(StudentConfig(seed=5))


@pytest.fixture(scope="module")
def teacher():
    return TeacherDetector(TeacherConfig(seed=9))


def small_config(**sampling_overrides):
    config = ShoggothConfig(eval_stride=5).with_training(
        train_batch_size=4, replay_capacity=12, minibatch_size=8, epochs=1
    )
    if sampling_overrides:
        config = config.with_sampling(**sampling_overrides)
    return config


class TestEdgeDevice:
    def test_sampling_respects_rate(self, student):
        config = ShoggothConfig().with_sampling(initial_rate_fps=1.0)
        edge = EdgeDevice(student.clone(), config=config)
        dataset = make_stationary(num_frames=90)
        sampled = sum(edge.maybe_sample(frame) for frame in dataset.build())
        # 3 seconds of video at 1 fps sampling -> about 3-4 samples
        assert 2 <= sampled <= 5

    def test_set_sampling_rate_changes_cadence(self, student):
        config = ShoggothConfig().with_sampling(initial_rate_fps=0.5)
        edge = EdgeDevice(student.clone(), config=config)
        edge.set_sampling_rate(2.0)
        assert edge.sampling_rate == 2.0
        with pytest.raises(ValueError):
            edge.set_sampling_rate(0.0)

    def test_upload_and_training_pools(self, student, teacher):
        config = small_config()
        trainer = AdaptiveTrainer(student.clone(), config.training)
        edge = EdgeDevice(trainer.student, config=config, trainer=trainer)
        frames = make_stationary(num_frames=60).build().collect()
        for frame in frames[:3]:
            edge.sample_buffer.append(frame)
        assert edge.upload_ready()
        batch = edge.take_upload_batch()
        assert len(batch) == 3 and not edge.sample_buffer

    def test_training_window_accounting(self, student, teacher):
        config = small_config()
        trainer = AdaptiveTrainer(student.clone(), config.training)
        edge = EdgeDevice(trainer.student, config=config, trainer=trainer)
        from repro.core.labeling import OnlineLabeler

        labeler = OnlineLabeler(teacher)
        frames = make_stationary(num_frames=60).build().collect()
        labeled = [labeler.label_frame(f, make_stationary(60).schedule.domain_at(f.index)) for f in frames[:4]]
        edge.receive_labels(labeled)
        assert edge.training_ready()
        window = edge.run_training_session(now=1.0)
        assert window.end > window.start >= 1.0
        assert edge.is_training_at((window.start + window.end) / 2)
        assert edge.fps_at((window.start + window.end) / 2) < edge.fps_at(window.end + 10)

    def test_alpha_estimate_consumes_history(self, student):
        edge = EdgeDevice(student.clone(), config=ShoggothConfig())
        frames = make_stationary(num_frames=30).build().collect()
        for frame in frames[:3]:
            edge.detect(frame)
        first = edge.estimated_alpha()
        assert 0.0 <= first <= 1.0
        assert edge.estimated_alpha() == 0.0  # history consumed

    def test_training_without_trainer_raises(self, student):
        edge = EdgeDevice(student.clone(), config=ShoggothConfig())
        with pytest.raises(RuntimeError):
            edge.run_training_session(0.0)


class TestCloudServer:
    def test_process_upload_returns_labels_and_rate(self, student, teacher):
        dataset = build_dataset("detrac", num_frames=120)
        cloud = CloudServer(teacher, schedule=dataset.schedule, config=small_config())
        frames = dataset.build().collect(limit=5)
        response = cloud.process_upload(frames, alpha=0.3, lambda_usage=0.8)
        assert len(response.labeled_frames) == 5
        assert 0.1 <= response.new_sampling_rate <= 2.0
        assert 0.0 <= response.phi <= 1.0
        assert cloud.total_gpu_seconds > 0

    def test_empty_upload_raises(self, teacher):
        dataset = build_dataset("detrac", num_frames=60)
        cloud = CloudServer(teacher, schedule=dataset.schedule)
        with pytest.raises(ValueError):
            cloud.process_upload([], alpha=0.5, lambda_usage=0.5)

    def test_cloud_training_requires_attachment(self, teacher, student):
        dataset = build_dataset("detrac", num_frames=60)
        cloud = CloudServer(teacher, schedule=dataset.schedule, config=small_config())
        with pytest.raises(RuntimeError):
            cloud.train_on_labels([])
        cloud.attach_cloud_student(student.clone())
        assert cloud.hosts_training
        frames = dataset.build().collect(limit=4)
        labeled = cloud.labeler.label_batch(frames, [dataset.schedule.domain_at(f.index) for f in frames])
        result = cloud.train_on_labels(labeled)
        assert result.gpu_seconds > 0
        assert isinstance(result.model_state, dict)

    def test_gpu_seconds_per_stream_second(self, teacher):
        dataset = build_dataset("detrac", num_frames=60)
        cloud = CloudServer(teacher, schedule=dataset.schedule)
        cloud.total_gpu_seconds = 5.0
        assert cloud.gpu_seconds_per_stream_second(10.0) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            cloud.gpu_seconds_per_stream_second(0.0)


class TestSessionOptions:
    def test_invalid_options(self):
        with pytest.raises(ValueError):
            SessionOptions(train_location="fog")
        with pytest.raises(ValueError):
            SessionOptions(fixed_rate_fps=0.0)


class TestCollaborativeSession:
    @pytest.mark.parametrize("name", sorted(STRATEGIES))
    def test_every_strategy_runs_end_to_end(self, name, student, teacher):
        dataset = build_dataset("detrac", num_frames=240)
        strategy = build_strategy(name)
        result = strategy.run(
            dataset=dataset,
            student=student.clone(),
            teacher=teacher,
            config=small_config(initial_rate_fps=2.0),
            seed=0,
        )
        assert result.strategy_name == name
        assert len(result.detections_per_frame) == len(result.ground_truth_per_frame) > 0
        assert result.duration_seconds == pytest.approx(8.0)
        assert result.fps_trace.size >= 8
        assert result.bandwidth.uplink_kbps >= 0

    def test_edge_only_has_no_traffic_and_full_fps(self, student, teacher):
        dataset = build_dataset("kitti", num_frames=240)
        result = build_strategy("edge_only").run(
            dataset=dataset, student=student.clone(), teacher=teacher, config=small_config()
        )
        assert result.bandwidth.uplink_kbps == 0.0
        assert result.bandwidth.downlink_kbps == 0.0
        assert result.average_fps == pytest.approx(30.0, abs=0.5)
        assert result.num_uploads == 0

    def test_cloud_only_uses_most_bandwidth_and_lowest_fps(self, student, teacher):
        dataset = build_dataset("kitti", num_frames=240)
        config = small_config(initial_rate_fps=2.0)
        cloud = build_strategy("cloud_only").run(
            dataset=dataset, student=student.clone(), teacher=teacher, config=config
        )
        shog = build_strategy("shoggoth").run(
            dataset=dataset, student=student.clone(), teacher=teacher, config=config
        )
        assert cloud.bandwidth.uplink_kbps > 5 * shog.bandwidth.uplink_kbps
        assert cloud.bandwidth.downlink_kbps > 20 * shog.bandwidth.downlink_kbps
        assert cloud.average_fps < shog.average_fps

    def test_shoggoth_trains_and_uses_uplink(self, student, teacher):
        dataset = build_dataset("detrac", num_frames=300)
        result = build_strategy("shoggoth").run(
            dataset=dataset, student=student.clone(), teacher=teacher,
            config=small_config(initial_rate_fps=2.0),
        )
        assert result.num_uploads > 0
        assert len(result.training_reports) > 0
        assert result.bandwidth.uplink_kbps > 0
        assert result.bandwidth.downlink_kbps < result.bandwidth.uplink_kbps

    def test_ams_downloads_models_and_keeps_edge_free(self, student, teacher):
        dataset = build_dataset("detrac", num_frames=300)
        ams = build_strategy("ams").run(
            dataset=dataset, student=student.clone(), teacher=teacher,
            config=small_config(initial_rate_fps=2.0),
        )
        shog = build_strategy("shoggoth").run(
            dataset=dataset, student=student.clone(), teacher=teacher,
            config=small_config(initial_rate_fps=2.0),
        )
        # AMS streams model updates -> much larger downlink than Shoggoth labels
        assert ams.bandwidth.downlink_kbps > 5 * shog.bandwidth.downlink_kbps
        # training happens in the cloud, so the edge never slows down
        assert ams.average_fps >= shog.average_fps
        # and the cloud pays more GPU time for AMS than for Shoggoth's labeling
        assert ams.cloud_gpu_seconds > shog.cloud_gpu_seconds

    def test_prompt_uses_more_uplink_than_shoggoth(self, student, teacher):
        dataset = build_dataset("stationary", num_frames=300)
        config = small_config()
        prompt = build_strategy("prompt").run(
            dataset=dataset, student=student.clone(), teacher=teacher, config=config
        )
        shog = build_strategy("shoggoth").run(
            dataset=dataset, student=student.clone(), teacher=teacher, config=config
        )
        # on a stationary video the adaptive controller backs off, Prompt cannot
        assert prompt.bandwidth.uplink_kbps >= shog.bandwidth.uplink_kbps

    def test_fixed_rate_strategy_scales_uplink(self, student, teacher):
        dataset = build_dataset("stationary", num_frames=300)
        config = small_config()
        slow = FixedRateShoggothStrategy(0.2).run(
            dataset=dataset, student=student.clone(), teacher=teacher, config=config
        )
        fast = FixedRateShoggothStrategy(2.0).run(
            dataset=dataset, student=student.clone(), teacher=teacher, config=config
        )
        assert fast.bandwidth.uplink_kbps > slow.bandwidth.uplink_kbps

    def test_replay_seed_passed_through(self, student, teacher):
        from repro.detection.pretrain import generate_offline_dataset

        dataset = build_dataset("detrac", num_frames=120)
        seed_data = generate_offline_dataset(6, seed=3)
        session = CollaborativeSession(
            dataset=dataset,
            student=student.clone(),
            teacher=teacher,
            options=SessionOptions(name="shoggoth"),
            config=small_config(),
            replay_seed=seed_data,
        )
        assert session.edge.trainer is not None
        assert len(session.edge.trainer.replay) == 6

    def test_unknown_strategy_raises(self):
        with pytest.raises(KeyError):
            build_strategy("teleport")
