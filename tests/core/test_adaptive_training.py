"""Tests for adaptive training with latent replay (paper Sec. III-B / Table II)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AdaptiveTrainer, AdaptiveTrainingConfig
from repro.detection import StudentConfig, StudentDetector
from repro.video import DAY_SUNNY, NIGHT, FrameRenderer, RenderConfig, Scene, SceneConfig


def make_batch(domain, n=6, seed=0):
    renderer = FrameRenderer(RenderConfig(seed=seed))
    scene = Scene(SceneConfig(seed=seed))
    scene.warm_up(domain, 60)
    images, labels = [], []
    for _ in range(n):
        boxes = scene.step(domain)
        images.append(renderer.render(scene.objects, domain))
        labels.append(list(boxes))
    return np.array(images), labels


@pytest.fixture(scope="module")
def student():
    return StudentDetector(StudentConfig(seed=11))


def small_config(**kwargs):
    defaults = dict(train_batch_size=4, replay_capacity=12, minibatch_size=8,
                    epochs=2, learning_rate=0.02)
    defaults.update(kwargs)
    return AdaptiveTrainingConfig(**defaults)


class TestAdaptiveTrainerBasics:
    def test_unknown_replay_layer_raises(self, student):
        with pytest.raises(KeyError):
            AdaptiveTrainer(student.clone(), small_config(replay_layer="bogus"))

    def test_front_fraction_ordering(self, student):
        input_trainer = AdaptiveTrainer(student.clone(), small_config(replay_layer="input"))
        conv_trainer = AdaptiveTrainer(student.clone(), small_config(replay_layer="conv5_4"))
        pool_trainer = AdaptiveTrainer(student.clone(), small_config(replay_layer="pool"))
        assert input_trainer.front_fraction == 0.0
        assert input_trainer.front_fraction < conv_trainer.front_fraction < pool_trainer.front_fraction

    def test_front_layers_get_lr_scale(self, student):
        s = student.clone()
        AdaptiveTrainer(s, small_config(front_lr_scale=0.25))
        front_params = s.model["conv1"].parameters()
        rear_params = s.model["head_out"].parameters()
        assert all(p.lr_scale == 0.25 for p in front_params)
        assert all(p.lr_scale == 1.0 for p in rear_params)

    def test_freeze_front_marks_untrainable(self, student):
        s = student.clone()
        AdaptiveTrainer(s, small_config(freeze_front=True))
        assert all(not p.trainable for p in s.model["conv1"].parameters())
        assert all(p.trainable for p in s.model["head_out"].parameters())

    def test_session_report_fields(self, student):
        trainer = AdaptiveTrainer(student.clone(), small_config(), seed=0)
        images, labels = make_batch(DAY_SUNNY, n=4)
        report = trainer.train_session(images, labels)
        assert report.session_index == 1
        assert report.num_new_images == 4
        assert report.num_steps > 0
        assert np.isfinite(report.mean_loss)
        assert report.cost.total_seconds > 0
        assert report.measured_wall_seconds > 0

    def test_mismatched_inputs_raise(self, student):
        trainer = AdaptiveTrainer(student.clone(), small_config())
        with pytest.raises(ValueError):
            trainer.train_session(np.zeros((2, 3, 32, 32)), [[]])
        with pytest.raises(ValueError):
            trainer.train_session(np.zeros((0, 3, 32, 32)), [])


class TestReplayBehaviour:
    def test_replay_memory_populated_after_sessions(self, student):
        trainer = AdaptiveTrainer(student.clone(), small_config(), seed=0)
        images, labels = make_batch(DAY_SUNNY, n=4)
        trainer.train_session(images, labels)
        assert len(trainer.replay) == 4
        trainer.train_session(images, labels)
        assert len(trainer.replay) == 8

    def test_replay_stores_latents_not_images(self, student):
        trainer = AdaptiveTrainer(student.clone(), small_config(replay_layer="pool"), seed=0)
        images, labels = make_batch(DAY_SUNNY, n=4)
        trainer.train_session(images, labels)
        activation = trainer.replay.items[0].activation
        assert activation.shape != images[0].shape  # latent, not raw pixels

    def test_input_replay_stores_images(self, student):
        trainer = AdaptiveTrainer(student.clone(), small_config(replay_layer="input"), seed=0)
        images, labels = make_batch(DAY_SUNNY, n=4)
        trainer.train_session(images, labels)
        assert trainer.replay.items[0].activation.shape == images[0].shape

    def test_no_replay_mode_keeps_memory_empty(self, student):
        trainer = AdaptiveTrainer(student.clone(), small_config(use_replay=False), seed=0)
        images, labels = make_batch(DAY_SUNNY, n=4)
        trainer.train_session(images, labels)
        assert len(trainer.replay) == 0

    def test_seed_replay(self, student):
        trainer = AdaptiveTrainer(student.clone(), small_config(), seed=0)
        images, labels = make_batch(DAY_SUNNY, n=8)
        stored = trainer.seed_replay(images, labels)
        assert stored == 8
        assert len(trainer.replay) == 8

    def test_seed_replay_respects_capacity(self, student):
        trainer = AdaptiveTrainer(student.clone(), small_config(replay_capacity=5), seed=0)
        images, labels = make_batch(DAY_SUNNY, n=8)
        assert trainer.seed_replay(images, labels) == 5

    def test_replay_mitigates_forgetting(self, student):
        """With replay (seeded from the old domain) the old-domain loss stays
        lower after adapting to a new domain than without replay."""
        day_images, day_labels = make_batch(DAY_SUNNY, n=10, seed=1)
        night_images, night_labels = make_batch(NIGHT, n=6, seed=2)

        def adapt(use_replay: bool) -> float:
            s = student.clone()
            trainer = AdaptiveTrainer(
                s, small_config(use_replay=use_replay, replay_capacity=12, epochs=3), seed=0
            )
            if use_replay:
                trainer.seed_replay(day_images, day_labels)
            for _ in range(4):
                trainer.train_session(night_images, night_labels)
            return s.loss_on_labels(day_images, day_labels)

        assert adapt(True) < adapt(False)


class TestTrainingEffectAndCost:
    def test_training_reduces_loss_on_new_domain(self, student):
        s = student.clone()
        trainer = AdaptiveTrainer(s, small_config(epochs=3, learning_rate=0.03), seed=0)
        images, labels = make_batch(NIGHT, n=6, seed=5)
        before = s.loss_on_labels(images, labels)
        for _ in range(3):
            trainer.train_session(images, labels)
        after = s.loss_on_labels(images, labels)
        assert after < before

    def test_cost_ordering_matches_table2(self, student):
        """Simulated training time: input replay >> conv5_4 replay > pool replay,
        and completely-frozen front is the cheapest backward."""
        images, labels = make_batch(DAY_SUNNY, n=4)

        def session_cost(**kwargs):
            trainer = AdaptiveTrainer(student.clone(), small_config(**kwargs), seed=0)
            trainer.train_session(images, labels)  # fill replay
            return trainer.train_session(images, labels).cost

        input_cost = session_cost(replay_layer="input")
        conv_cost = session_cost(replay_layer="conv5_4")
        pool_cost = session_cost(replay_layer="pool")
        frozen_cost = session_cost(replay_layer="pool", freeze_front=True)

        assert input_cost.forward_seconds > conv_cost.forward_seconds > pool_cost.forward_seconds
        assert frozen_cost.backward_seconds < pool_cost.backward_seconds

    def test_frozen_front_does_not_change_front_weights(self, student):
        s = student.clone()
        trainer = AdaptiveTrainer(s, small_config(freeze_front=True), seed=0)
        before = s.model["conv1"].weight.data.copy()
        images, labels = make_batch(DAY_SUNNY, n=4)
        trainer.train_session(images, labels)
        assert np.allclose(before, s.model["conv1"].weight.data)

    def test_front_lr_scale_changes_front_weights_slowly(self, student):
        s = student.clone()
        trainer = AdaptiveTrainer(s, small_config(front_lr_scale=0.1, epochs=2), seed=0)
        before = s.model["conv1"].weight.data.copy()
        images, labels = make_batch(NIGHT, n=6)
        trainer.train_session(images, labels)
        delta_front = np.abs(s.model["conv1"].weight.data - before).mean()
        assert delta_front > 0  # still learning, just slowly
