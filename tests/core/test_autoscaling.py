"""Elastic-autoscaling tests: policies, drain/handoff, golden pin.

Four layers:

* unit tests drive the :class:`AutoscalePolicy` objects with synthetic
  :class:`AutoscaleSignal` samples (thresholds, hysteresis, cooldown,
  min/max bounds — no fleet needed);
* cluster-surgery tests exercise :meth:`CloudCluster.add_worker` /
  :meth:`CloudCluster.remove_worker` edge cases directly (scale-in
  below one active worker refused, draining a worker that holds
  in-flight jobs, deterministic sticky remapping);
* the golden regression pins the **default** (``autoscaler="none"``)
  fleet — ticks firing, policy never resizing — to the exact PR 3
  fixed-cluster metrics: the autoscaling machinery must be invisible
  until a scaling policy opts in;
* end-to-end tests run a bursty fleet under a scripted policy and under
  :class:`SloScaler` and check jobs survive resizes, the scaling
  timeline is consistent and provisioned capacity actually shrinks.
"""

from __future__ import annotations

import pytest

from repro.core import CameraSpec, CloudCluster, FleetSession
from repro.core.autoscaling import (
    AUTOSCALERS,
    AutoscalePolicy,
    AutoscaleSignal,
    NoScaler,
    SloScaler,
    StepScaler,
    build_autoscaler,
)
from repro.core.scheduling import LABELING, GpuJob, StickyPlacement
from repro.detection import StudentConfig, StudentDetector, TeacherConfig, TeacherDetector
from repro.network.link import LinkConfig, SharedLink
from repro.runtime.events import EventScheduler
from repro.video import build_dataset

from test_scheduling import PR1_GOLDEN, make_mixed_fleet, small_config


def sig(
    now: float = 0.0,
    p95: float = 0.0,
    util: float = 0.0,
    n: int = 1,
    backlog: float = 0.0,
    jobs: int = 10,
) -> AutoscaleSignal:
    return AutoscaleSignal(
        time=now,
        p95_queue_delay=p95,
        mean_queue_delay=p95 * 0.6,
        utilization=util,
        backlog_gpu_seconds=backlog,
        num_gpus=n,
        window_jobs=jobs,
    )


# ---------------------------------------------------------------------------
# registry / validation
# ---------------------------------------------------------------------------
class TestAutoscalerRegistry:
    def test_build_by_name_and_passthrough(self):
        assert isinstance(build_autoscaler(None), NoScaler)
        assert isinstance(build_autoscaler("slo"), SloScaler)
        assert isinstance(build_autoscaler("step"), StepScaler)
        instance = SloScaler(slo_seconds=0.7)
        assert build_autoscaler(instance) is instance
        built = build_autoscaler("slo", slo_seconds=0.25, max_gpus=6)
        assert built.slo_seconds == 0.25 and built.max_gpus == 6

    def test_unknown_name_and_bad_options_raise(self):
        with pytest.raises(ValueError, match="unknown autoscaler"):
            build_autoscaler("magic")
        with pytest.raises(ValueError, match="keyword options"):
            build_autoscaler(NoScaler(), min_gpus=2)
        with pytest.raises(NotImplementedError):
            AutoscalePolicy().decide(sig())

    def test_registry_covers_all_three_policies(self):
        assert set(AUTOSCALERS) == {"none", "slo", "step"}

    def test_knob_validation(self):
        with pytest.raises(ValueError, match="interval_seconds"):
            NoScaler(interval_seconds=0.0)
        with pytest.raises(ValueError, match="window_seconds"):
            NoScaler(window_seconds=-1.0)
        with pytest.raises(ValueError, match="min_gpus"):
            NoScaler(min_gpus=0)
        with pytest.raises(ValueError, match="max_gpus"):
            NoScaler(min_gpus=4, max_gpus=2)
        with pytest.raises(ValueError, match="cooldown_seconds"):
            NoScaler(cooldown_seconds=-0.1)
        with pytest.raises(ValueError, match="slo_seconds"):
            SloScaler(slo_seconds=0.0)
        with pytest.raises(ValueError, match="scale_in_utilization"):
            SloScaler(scale_in_utilization=1.5)
        with pytest.raises(ValueError, match="sustained_idle_ticks"):
            SloScaler(sustained_idle_ticks=0)
        with pytest.raises(ValueError, match="hysteresis_fraction"):
            SloScaler(hysteresis_fraction=0.0)
        with pytest.raises(ValueError, match="scale_out_step"):
            SloScaler(scale_out_step=0)
        with pytest.raises(ValueError, match="low_utilization"):
            StepScaler(high_utilization=0.3, low_utilization=0.5)


# ---------------------------------------------------------------------------
# policy unit tests
# ---------------------------------------------------------------------------
class TestNoScaler:
    def test_never_scales(self):
        policy = NoScaler()
        for p95, util in [(0.0, 0.0), (10.0, 1.0), (0.0, 1.0), (10.0, 0.0)]:
            assert policy.decide(sig(p95=p95, util=util, n=3)) == 0


class TestSloScaler:
    def policy(self, **kwargs) -> SloScaler:
        defaults = dict(
            slo_seconds=0.5,
            interval_seconds=1.0,
            cooldown_seconds=3.0,
            min_gpus=1,
            max_gpus=4,
            sustained_idle_ticks=2,
            scale_in_utilization=0.4,
        )
        defaults.update(kwargs)
        return SloScaler(**defaults)

    def test_scales_out_on_p95_breach(self):
        assert self.policy().decide(sig(now=1.0, p95=0.8, util=0.9, n=1)) == 1

    def test_scales_out_on_projected_backlog_breach(self):
        # p95 in the window still looks fine, but 3 GPU-seconds of
        # backlog on 2 workers projects a 1.5 s wait — react now
        assert self.policy().decide(sig(now=1.0, p95=0.1, backlog=3.0, n=2)) == 1

    def test_respects_max_gpus(self):
        assert self.policy().decide(sig(now=1.0, p95=9.9, util=1.0, n=4)) == 0

    def test_scale_out_step_clamped_to_max(self):
        policy = self.policy(scale_out_step=3)
        assert policy.decide(sig(now=1.0, p95=0.8, n=3)) == 1

    def test_cooldown_prevents_flapping(self):
        policy = self.policy()
        assert policy.decide(sig(now=1.0, p95=0.8, n=1)) == 1
        policy.note_scaled(1.0)  # the controller stamps applied resizes
        # breach persists, but the cooldown (3 s) holds the policy
        assert policy.decide(sig(now=2.0, p95=0.9, n=2)) == 0
        assert policy.decide(sig(now=3.0, p95=0.9, n=2)) == 0
        assert policy.decide(sig(now=4.0, p95=0.9, n=2)) == 1

    def test_scale_in_needs_sustained_idle(self):
        policy = self.policy(cooldown_seconds=0.0)
        assert policy.decide(sig(now=1.0, p95=0.0, util=0.1, n=3)) == 0
        assert policy.decide(sig(now=2.0, p95=0.0, util=0.1, n=3)) == -1
        # streak was consumed: the next idle tick starts a new streak
        assert policy.decide(sig(now=3.0, p95=0.0, util=0.1, n=2)) == 0

    def test_busy_tick_resets_the_idle_streak(self):
        policy = self.policy(cooldown_seconds=0.0)
        assert policy.decide(sig(now=1.0, p95=0.0, util=0.1, n=3)) == 0
        assert policy.decide(sig(now=2.0, p95=0.0, util=0.9, n=3)) == 0
        assert policy.decide(sig(now=3.0, p95=0.0, util=0.1, n=3)) == 0

    def test_hysteresis_blocks_scale_in_when_p95_near_slo(self):
        policy = self.policy(cooldown_seconds=0.0, hysteresis_fraction=0.5)
        # util is idle but p95 (0.4) sits above 0.5 * SLO = 0.25
        for now in (1.0, 2.0, 3.0, 4.0):
            assert policy.decide(sig(now=now, p95=0.4, util=0.1, n=3)) == 0

    def test_never_scales_below_min_gpus(self):
        policy = self.policy(min_gpus=2, cooldown_seconds=0.0)
        for now in (1.0, 2.0, 3.0, 4.0):
            assert policy.decide(sig(now=now, p95=0.0, util=0.0, n=2)) == 0

    def test_reset_clears_cooldown_and_streak(self):
        policy = self.policy()
        policy.decide(sig(now=1.0, p95=0.8, n=1))
        policy.note_scaled(1.0)
        policy.reset()
        assert not policy.in_cooldown(1.5)
        assert policy._idle_ticks == 0


class TestStepScaler:
    def test_thresholds(self):
        policy = StepScaler(
            high_utilization=0.8, low_utilization=0.3, cooldown_seconds=0.0
        )
        assert policy.decide(sig(now=1.0, util=0.9, n=2)) == 1
        assert policy.decide(sig(now=2.0, util=0.5, n=2)) == 0
        assert policy.decide(sig(now=3.0, util=0.1, n=2)) == -1
        assert policy.decide(sig(now=4.0, util=0.1, n=1)) == 0  # min bound
        assert policy.decide(sig(now=5.0, util=0.9, n=8)) == 0  # max bound


# ---------------------------------------------------------------------------
# cluster surgery: add/remove/drain edge cases
# ---------------------------------------------------------------------------
def run_fleet_session(num_gpus=2, autoscaler=None, n_cameras=4, num_frames=240):
    datasets = ["detrac", "kitti", "waymo", "stationary"]
    strategies = ["shoggoth", "ams", "shoggoth", "shoggoth"]
    cameras = [
        CameraSpec(
            name=f"cam{i}",
            dataset=build_dataset(datasets[i % 4], num_frames=num_frames),
            strategy=strategies[i % 4],
            seed=i,
        )
        for i in range(n_cameras)
    ]
    session = FleetSession(
        cameras,
        student=StudentDetector(StudentConfig(seed=5)),
        teacher=TeacherDetector(TeacherConfig(seed=9)),
        config=small_config(),
        num_gpus=num_gpus,
        autoscaler=autoscaler,
    )
    return session, session.run()


class TestClusterSurgery:
    def test_add_worker_requires_bound_cluster(self):
        with pytest.raises(RuntimeError, match="bind the cluster"):
            CloudCluster(num_gpus=1).add_worker(now=0.0)

    def test_cannot_grow_instance_built_cluster(self):
        from repro.core.scheduling import FifoScheduler

        session, _ = run_fleet_session(num_gpus=1)
        session.cluster._scheduler_spec = FifoScheduler()
        with pytest.raises(ValueError, match="cannot grow"):
            session.cluster.add_worker(now=0.0)

    def test_remove_last_active_worker_refused(self):
        session, _ = run_fleet_session(num_gpus=1)
        with pytest.raises(ValueError, match="last active"):
            session.cluster.remove_worker(now=999.0, scheduler=EventScheduler())

    def test_remove_below_one_refused_even_via_repeated_calls(self):
        session, _ = run_fleet_session(num_gpus=2)
        scheduler = EventScheduler()
        session.cluster.remove_worker(now=999.0, scheduler=scheduler)
        with pytest.raises(ValueError, match="last active"):
            session.cluster.remove_worker(now=999.0, scheduler=scheduler)

    def test_missing_scheduler_rejected_before_any_state_changes(self):
        """A refused drain leaves the worker fully intact (not half-removed)."""
        session, _ = run_fleet_session(num_gpus=2)
        cluster = session.cluster
        victim = cluster.workers[0]
        victim.queue.append(
            GpuJob(kind=LABELING, camera_id=0, arrival=999.5, service_seconds=0.1)
        )
        log_before = list(cluster._provision_log)
        with pytest.raises(ValueError, match="needs the event scheduler"):
            cluster.remove_worker(0, now=1000.0)
        # nothing was mutated: the worker still takes placements, keeps
        # its queue, and the provision log records no retirement
        assert not victim.draining
        assert len(victim.queue) == 1
        assert cluster.num_active == 2
        assert cluster._provision_log == log_before
        # the retry with a scheduler succeeds
        cluster.remove_worker(0, now=1000.0, scheduler=EventScheduler())
        assert victim.draining

    def test_remove_same_worker_twice_refused(self):
        session, _ = run_fleet_session(num_gpus=3)
        scheduler = EventScheduler()
        session.cluster.remove_worker(1, now=999.0, scheduler=scheduler)
        with pytest.raises(ValueError, match="already draining"):
            session.cluster.remove_worker(1, now=999.0, scheduler=scheduler)
        with pytest.raises(ValueError, match="no worker 7"):
            session.cluster.remove_worker(7, now=999.0, scheduler=scheduler)

    def test_drain_hands_off_queued_jobs_and_blocks_placements(self):
        """Remove a worker while it holds queued + in-flight work."""
        session, _ = run_fleet_session(num_gpus=2)
        cluster = session.cluster
        scheduler = EventScheduler()
        scheduler.clock.advance_to(1000.0)
        victim, survivor = cluster.workers
        # rebuild a mid-run shape: the victim is mid-busy-period (its
        # in-flight jobs finish at 1000.5) and has a queued backlog
        victim.busy_until = 1000.5
        victim.queue.extend(
            GpuJob(kind=LABELING, camera_id=c, arrival=999.5, service_seconds=0.1)
            for c in (0, 1, 2)
        )
        survivor.busy_until = 0.0
        survivor_jobs_before = len(survivor.queue) + len(survivor.completed_jobs)
        removed = cluster.remove_worker(0, now=1000.0, scheduler=scheduler)
        assert removed is victim and victim.draining
        # queued jobs moved off the draining worker without re-admission:
        # the idle survivor immediately started serving one and queued two
        assert not victim.queue
        in_service = 1 if survivor.busy_until > 1000.0 else 0
        assert len(survivor.queue) + in_service == 3
        assert survivor.busy_until > 1000.0  # handoff restarted service
        assert len(survivor.completed_jobs) == survivor_jobs_before
        # the handed-off jobs keep their original arrival time, so the
        # eventual wait statistic includes the drained worker's queueing
        assert all(job.arrival == 999.5 for job in survivor.queue)
        # the draining worker is excluded from future placements
        assert cluster.active_workers == [survivor]
        assert cluster.num_active == 1
        # provisioned capacity keeps charging until the in-flight busy
        # period ends (1000.5), not the removal instant
        timeline = cluster.provision_timeline()
        assert timeline[-1] == (1000.5, 1)

    def test_add_worker_joins_tenancy_and_placements(self):
        session, _ = run_fleet_session(num_gpus=1)
        cluster = session.cluster
        worker = cluster.add_worker(now=500.0)
        assert worker.worker_id == 1
        assert cluster.num_active == 2
        # shared registries, fresh scheduler with the tenants' weights
        assert worker.tenants is cluster.tenants
        assert worker.gpu_seconds_by_camera is cluster.gpu_seconds_by_camera
        assert worker.scheduler is not cluster.workers[0].scheduler
        assert worker.scheduler.weights == cluster.workers[0].scheduler.weights

    def test_added_worker_inherits_measured_phi(self):
        session, _ = run_fleet_session(num_gpus=1)
        cluster = session.cluster
        cluster._scheduler_spec = "drift"
        worker = cluster.add_worker(now=500.0)
        # φ measurements observed before the worker existed were
        # replayed into its scheduler: no camera is "unmeasured" (+inf)
        measured = set(cluster._last_phi)
        assert measured
        for camera_id in measured:
            assert worker.scheduler.phi(camera_id) < float("inf")

    def test_scale_out_waits_for_drained_worker_to_stop_charging(self):
        """max_gpus bounds spend: a draining worker still finishing its
        busy period counts against the bound until it actually stops."""
        from repro.core.autoscaling import AutoscaleController

        session, _ = run_fleet_session(num_gpus=2)
        cluster = session.cluster
        scheduler = EventScheduler()
        scheduler.clock.advance_to(1000.0)
        victim = cluster.workers[1]
        victim.busy_until = 1002.0  # in-flight work outlives the removal
        cluster.remove_worker(1, now=1000.0, scheduler=scheduler)
        assert cluster.num_charging(1000.5) == 2
        assert cluster.num_charging(1003.0) == 1

        policy = SloScaler(slo_seconds=0.1, max_gpus=2, cooldown_seconds=0.0)
        controller = AutoscaleController(policy, cluster, horizon=2000.0)
        signal = controller.sample(1000.5)
        controller._scale_out(1, signal, 1000.5)
        # blocked: 1 active + the still-charging drained worker == max_gpus
        assert cluster.num_active == 1 and controller.events == []
        controller._scale_out(1, signal, 1003.0)
        assert cluster.num_active == 2 and len(controller.events) == 1

    def test_blocked_scale_out_does_not_burn_the_cooldown(self):
        """A decision the controller could not apply (spend bound) must
        not start the cooldown clock and stall recovery mid-breach."""
        from repro.core.autoscaling import AutoscaleController
        from repro.runtime.events import AutoscaleTick

        session, _ = run_fleet_session(num_gpus=2)
        cluster = session.cluster
        scheduler = EventScheduler()
        scheduler.clock.advance_to(1000.0)
        victim = cluster.workers[1]
        victim.busy_until = 1002.5  # still charging past the removal
        cluster.remove_worker(1, now=1000.0, scheduler=scheduler)
        survivor = cluster.workers[0]
        # a standing backlog keeps the projected delay far over the SLO
        survivor.queue.extend(
            GpuJob(kind=LABELING, camera_id=c, arrival=1000.0, service_seconds=2.0)
            for c in (0, 1, 2)
        )
        policy = SloScaler(
            slo_seconds=0.1, interval_seconds=1.0, cooldown_seconds=30.0,
            max_gpus=2, min_gpus=1,
        )
        controller = AutoscaleController(policy, cluster, horizon=5000.0)
        controller.on_tick(AutoscaleTick(time=1001.0), scheduler)
        # blocked: the drained worker still counts against max_gpus
        assert controller.events == []
        assert not policy.in_cooldown(1002.0)  # the stamp was retracted
        # next tick the drained worker has stopped charging: scale out
        # immediately, despite the 30 s cooldown a burnt stamp would impose
        controller.on_tick(AutoscaleTick(time=1003.0), scheduler)
        assert [e.action for e in controller.events] == ["scale_out"]
        assert cluster.num_active == 2

    def test_instance_built_cluster_with_growing_autoscaler_fails_fast(self):
        """The incompatibility surfaces at construction, not mid-run."""
        from repro.core.scheduling import FifoScheduler

        cameras = burst_cameras(frames=120)
        student = StudentDetector(StudentConfig(seed=5))
        teacher = TeacherDetector(TeacherConfig(seed=9))
        with pytest.raises(ValueError, match="cannot add workers"):
            FleetSession(
                cameras, student=student, teacher=teacher, config=small_config(),
                cluster=CloudCluster(num_gpus=1, scheduler=FifoScheduler()),
                autoscaler=SloScaler(max_gpus=4),
            )
        # a min_gpus floor above the starting size would silently never
        # hold (nothing scales out just to reach it): refuse it up front
        with pytest.raises(ValueError, match="set num_gpus >= min_gpus"):
            FleetSession(
                cameras, student=student, teacher=teacher, config=small_config(),
                num_gpus=1, autoscaler=SloScaler(min_gpus=2, max_gpus=4),
            )
        # a scaler that cannot outgrow the cluster stays allowed, as does
        # the default NoScaler (the PR 3 golden pin relies on it)
        FleetSession(
            cameras, student=student, teacher=teacher, config=small_config(),
            cluster=CloudCluster(num_gpus=2, scheduler=lambda: FifoScheduler()),
            autoscaler=SloScaler(min_gpus=1, max_gpus=2),
        )
        FleetSession(
            cameras, student=student, teacher=teacher, config=small_config(),
            cluster=CloudCluster(num_gpus=1, scheduler=FifoScheduler()),
        )

    def test_utilization_carries_over_long_busy_periods(self):
        """A busy period credited at its start reads as sustained load
        on later ticks, not as one 1.0 tick followed by idle ticks."""
        from repro.core.autoscaling import AutoscaleController

        session, _ = run_fleet_session(num_gpus=1)
        cluster = session.cluster
        worker = cluster.workers[0]
        policy = NoScaler(interval_seconds=1.0)
        controller = AutoscaleController(policy, cluster, horizon=1e9)
        baseline = cluster.busy_seconds
        controller.sample(2000.0)  # settle the carryover at the run's end
        # one long busy period (5 GPU-seconds) starts just before a tick
        worker.busy_seconds = baseline + 5.0
        worker.busy_until = 2005.5
        for tick in range(1, 6):
            signal = controller.sample(2000.0 + tick)
            assert signal.utilization == pytest.approx(1.0), f"tick {tick}"
        # credit exhausted after the period's five GPU-seconds
        assert controller.sample(2006.0).utilization == pytest.approx(0.0)

    def test_one_busy_worker_does_not_saturate_the_cluster_signal(self):
        """Per-worker carryover: one saturated worker of two reads as
        0.5 cluster utilization, not 1.0-then-0.0."""
        from repro.core.autoscaling import AutoscaleController

        session, _ = run_fleet_session(num_gpus=2)
        cluster = session.cluster
        busy_worker, idle_worker = cluster.workers
        policy = NoScaler(interval_seconds=1.0)
        controller = AutoscaleController(policy, cluster, horizon=1e9)
        controller.sample(3000.0)  # settle both workers' carryover
        # one worker starts a 4 GPU-second busy period; the other idles
        busy_worker.busy_seconds += 4.0
        busy_worker.busy_until = 3004.0
        for tick in range(1, 5):
            signal = controller.sample(3000.0 + tick)
            assert signal.utilization == pytest.approx(0.5), f"tick {tick}"
        assert controller.sample(3005.0).utilization == pytest.approx(0.0)

    def test_provisioned_gpu_seconds_integrates_resizes(self):
        session, _ = run_fleet_session(num_gpus=2)
        cluster = session.cluster
        base = cluster.provisioned_gpu_seconds(10.0)
        cluster.add_worker(now=4.0)
        # 2 GPUs for 10 s, plus one more over [4, 10]
        assert cluster.provisioned_gpu_seconds(10.0) == pytest.approx(base + 6.0)


class TestStickyRemap:
    class Stub:
        def pending_gpu_seconds(self, now):
            return 0.0

    def job(self, camera_id):
        return GpuJob(
            kind=LABELING, camera_id=camera_id, arrival=0.0, service_seconds=0.1
        )

    def test_remap_is_deterministic_after_resize(self):
        policy = StickyPlacement()
        four = [self.Stub() for _ in range(4)]
        three = four[:3]
        first = {c: policy.place(self.job(c), four, 0.0) for c in range(12)}
        remapped = {c: policy.place(self.job(c), three, 1.0) for c in range(12)}
        # identical to a fresh policy hashing straight onto 3 workers
        fresh = StickyPlacement()
        expected = {c: fresh.place(self.job(c), three, 0.0) for c in range(12)}
        assert remapped == expected
        assert all(index < 3 for index in remapped.values())
        # growing back to 4 restores the original assignment
        regrown = {c: policy.place(self.job(c), four, 2.0) for c in range(12)}
        assert regrown == first

    def test_stable_while_worker_count_unchanged(self):
        policy = StickyPlacement()
        workers = [self.Stub() for _ in range(4)]
        for camera_id in range(8):
            first = policy.place(self.job(camera_id), workers, 0.0)
            for _ in range(3):
                assert policy.place(self.job(camera_id), workers, 1.0) == first

    def test_net_zero_resize_still_rehashes(self):
        """Drain one worker, add another: the count is unchanged but the
        set is not — cached indices must not dereference new workers."""
        a, b, c, d = (self.Stub() for _ in range(4))
        policy = StickyPlacement()
        before = {cam: policy.place(self.job(cam), [a, b, c], 0.0) for cam in range(12)}
        # worker a drained, worker d added: same size, different set
        after = {cam: policy.place(self.job(cam), [b, c, d], 1.0) for cam in range(12)}
        fresh = StickyPlacement()
        expected = {cam: fresh.place(self.job(cam), [b, c, d], 0.0) for cam in range(12)}
        assert after == expected  # deterministic rehash against the new set
        assert before.keys() == after.keys()


# ---------------------------------------------------------------------------
# golden regression: default autoscaler == PR 3 fixed cluster, bit for bit
# ---------------------------------------------------------------------------
class TestNoScalerGolden:
    def test_default_fleet_reproduces_pr3_metrics_bit_for_bit(self):
        """`autoscaler="none"` must be indistinguishable from the fixed
        cluster (the controller schedules no ticks for it)."""
        result = FleetSession(
            make_mixed_fleet().cameras,
            student=StudentDetector(StudentConfig(seed=5)),
            teacher=TeacherDetector(TeacherConfig(seed=9)),
            config=small_config(),
            autoscaler="none",
        ).run()
        golden = PR1_GOLDEN
        assert result.autoscaler == "none"
        assert result.scaling_events == []
        assert result.num_scale_outs == 0 and result.num_scale_ins == 0
        assert result.slo_violation_fraction == 0.0
        assert result.mean_queue_delay == pytest.approx(
            golden["mean_queue_delay"], rel=1e-12
        )
        assert result.max_queue_delay == pytest.approx(
            golden["max_queue_delay"], rel=1e-12
        )
        assert result.cloud_gpu_seconds == pytest.approx(
            golden["cloud_gpu_seconds"], rel=1e-12
        )
        assert result.cloud_busy_seconds == pytest.approx(
            golden["cloud_busy_seconds"], rel=1e-12
        )
        assert result.num_labeling_batches == golden["num_labeling_batches"]
        for name, expected in golden["gpu_seconds_by_camera"].items():
            assert result.gpu_seconds_by_camera[name] == pytest.approx(
                expected, rel=1e-12
            )
        for entry in result.cameras:
            session = entry.session
            assert session.num_uploads == golden["num_uploads"][entry.camera]
            assert session.bandwidth.uplink_bytes == golden["uplink_bytes"][entry.camera]
            assert (
                session.bandwidth.downlink_bytes
                == golden["downlink_bytes"][entry.camera]
            )
            assert entry.mean_upload_latency == pytest.approx(
                golden["mean_upload_latency"], rel=1e-12
            )
        # elastic metrics collapse to the fixed-provisioning story
        assert result.gpu_seconds_provisioned == pytest.approx(
            result.num_gpus * result.duration_seconds
        )
        assert result.mean_gpu_count == pytest.approx(1.0)
        assert result.peak_num_gpus == 1 and result.final_num_gpus == 1

    def test_ticking_but_never_resizing_policy_leaves_the_run_untouched(self):
        """A policy that DOES tick (unlike NoScaler, which schedules no
        ticks) but never resizes must not perturb the simulation: ticks
        sample state, they never mutate it."""
        pinned = make_mixed_fleet().run()
        ticked = FleetSession(
            make_mixed_fleet().cameras,
            student=StudentDetector(StudentConfig(seed=5)),
            teacher=TeacherDetector(TeacherConfig(seed=9)),
            config=small_config(),
            autoscaler=ScriptedScaler({}, interval_seconds=0.5),
        ).run()
        assert ticked.queue_waits == pinned.queue_waits
        assert ticked.gpu_seconds_by_camera == pinned.gpu_seconds_by_camera


# ---------------------------------------------------------------------------
# end to end: scripted resizes and the SLO scaler under a burst
# ---------------------------------------------------------------------------
class ScriptedScaler(AutoscalePolicy):
    """Test policy: apply a fixed {tick_time: delta} schedule."""

    name = "scripted"

    def __init__(self, script: dict[float, int], **kwargs) -> None:
        super().__init__(**kwargs)
        self.script = dict(script)

    def decide(self, signal: AutoscaleSignal) -> int:
        for when, delta in list(self.script.items()):
            if signal.time >= when:
                del self.script[when]
                return delta
        return 0


def burst_cameras(frames=240, n_burst=4, n_steady=2):
    datasets = ["detrac", "kitti", "waymo", "stationary"]
    cams = [
        CameraSpec(
            name=f"steady{i}",
            dataset=build_dataset(datasets[i % 4], num_frames=frames),
            strategy="shoggoth",
            seed=i,
        )
        for i in range(n_steady)
    ]
    cams += [
        CameraSpec(
            name=f"burst{i}",
            dataset=build_dataset(datasets[i % 4], num_frames=frames // 2),
            strategy="shoggoth",
            seed=100 + i,
        )
        for i in range(n_burst)
    ]
    return cams


def run_burst_fleet(autoscaler, num_gpus=1, frames=240):
    return FleetSession(
        burst_cameras(frames=frames),
        student=StudentDetector(StudentConfig(seed=5)),
        teacher=TeacherDetector(TeacherConfig(seed=9)),
        config=small_config(),
        link=SharedLink(LinkConfig()),
        num_gpus=num_gpus,
        placement="least_loaded",
        autoscaler=autoscaler,
    ).run()


class TestElasticFleetEndToEnd:
    def test_scripted_resize_serves_every_upload(self):
        """Scale out mid-burst, drain mid-run: no upload loses its labels."""
        scripted = ScriptedScaler(
            {2.0: +1, 3.0: +1, 6.0: -1}, interval_seconds=1.0
        )
        result = run_burst_fleet(scripted)
        # no upload lost across the resizes: every sent batch was served
        sent = sum(entry.session.num_uploads for entry in result.cameras)
        assert len(result.queue_waits) == sent
        assert result.num_scale_outs == 2 and result.num_scale_ins == 1
        assert result.peak_num_gpus == 3 and result.final_num_gpus == 2
        assert [e.action for e in result.scaling_events] == [
            "scale_out",
            "scale_out",
            "scale_in",
        ]
        # provisioned capacity sits between the 1-GPU and 3-GPU envelopes
        assert (
            result.duration_seconds
            < result.gpu_seconds_provisioned
            < 3 * result.duration_seconds
        )

    def test_slo_scaler_scales_out_and_back_in(self):
        policy = SloScaler(
            slo_seconds=0.5,
            interval_seconds=1.0,
            window_seconds=4.0,
            cooldown_seconds=1.0,
            min_gpus=1,
            max_gpus=3,
            scale_in_utilization=0.6,
            sustained_idle_ticks=2,
            hysteresis_fraction=1.0,
        )
        result = run_burst_fleet(policy)
        assert result.autoscaler == "slo"
        assert result.num_scale_outs >= 1
        assert result.num_scale_ins >= 1
        assert result.peak_num_gpus > 1
        assert result.final_num_gpus < result.peak_num_gpus
        # the timeline is internally consistent
        count = result.num_gpus
        for event in result.scaling_events:
            assert event.num_gpus_before == count
            count = event.num_gpus_after
            assert abs(event.num_gpus_after - event.num_gpus_before) == 1
        # elastic provisioning cost less than pinning the peak
        assert result.gpu_seconds_provisioned < (
            result.peak_num_gpus * result.duration_seconds
        )
        assert 1.0 <= result.mean_gpu_count <= result.peak_num_gpus
        # and the run still served every upload it admitted
        sent = sum(entry.session.num_uploads for entry in result.cameras)
        assert len(result.queue_waits) == sent

    def test_conflicting_cluster_and_autoscaler_is_allowed(self):
        """The autoscaler knob is orthogonal to bring-your-own-cluster."""
        session = FleetSession(
            burst_cameras(frames=120),
            student=StudentDetector(StudentConfig(seed=5)),
            teacher=TeacherDetector(TeacherConfig(seed=9)),
            config=small_config(),
            cluster=CloudCluster(num_gpus=2),
            autoscaler=NoScaler(),
        )
        result = session.run()
        assert result.num_gpus == 2 and result.scaling_events == []
