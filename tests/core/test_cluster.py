"""Sharded-cloud tests: placement policies, cluster wiring, golden pin.

Three layers:

* property-style unit tests drive the :class:`PlacementPolicy` objects
  with synthetic job streams against stub workers (no fleet needed);
* the golden regression pins ``CloudCluster(num_gpus=1,
  placement="round_robin")`` with the default FIFO scheduler to the
  exact PR 2 fleet metrics (which are themselves the PR 1 metrics) —
  the sharding refactor must be invisible until a second GPU is added;
* multi-GPU integration tests check that sharding actually spreads
  load, cuts queue delay, keeps sticky cameras on one worker and
  reports shard-aware utilisation.
"""

from __future__ import annotations

import pytest

from repro.core import CameraSpec, CloudCluster, FleetSession
from repro.core.scheduling import (
    LABELING,
    FifoScheduler,
    GpuJob,
    LeastLoadedPlacement,
    PLACEMENTS,
    PlacementPolicy,
    PowerOfTwoPlacement,
    RoundRobinPlacement,
    StalenessPriorityScheduler,
    StickyPlacement,
    build_placement,
)
from repro.detection import StudentConfig, StudentDetector, TeacherConfig, TeacherDetector
from repro.video import build_dataset

from test_scheduling import PR1_GOLDEN, make_mixed_fleet, small_config


def job(camera_id: int, arrival: float, service: float = 0.1) -> GpuJob:
    return GpuJob(
        kind=LABELING, camera_id=camera_id, arrival=arrival, service_seconds=service
    )


class StubWorker:
    """Minimal GpuWorkerView: accumulated load, never draining."""

    def __init__(self) -> None:
        self.load = 0.0

    def pending_gpu_seconds(self, now: float) -> float:
        return self.load


def drive(policy: PlacementPolicy, services: list[float], num_workers: int):
    """Place one job stream; return per-step loads and the max imbalance."""
    policy.reset()
    workers = [StubWorker() for _ in range(num_workers)]
    max_imbalance = 0.0
    for index, service in enumerate(services):
        chosen = policy.place(job(index, float(index), service), workers, float(index))
        workers[chosen].load += service
        loads = [worker.load for worker in workers]
        max_imbalance = max(max_imbalance, max(loads) - min(loads))
    return [worker.load for worker in workers], max_imbalance


# ---------------------------------------------------------------------------
# placement unit / property tests
# ---------------------------------------------------------------------------
class TestPlacementRegistry:
    def test_build_by_name_and_passthrough(self):
        assert isinstance(build_placement(None), RoundRobinPlacement)
        assert isinstance(build_placement("least_loaded"), LeastLoadedPlacement)
        instance = StickyPlacement()
        assert build_placement(instance) is instance
        seeded = build_placement("power_of_two", seed=3)
        assert seeded.seed == 3

    def test_unknown_name_and_bad_options_raise(self):
        with pytest.raises(ValueError, match="unknown placement"):
            build_placement("random")
        with pytest.raises(ValueError):
            build_placement(RoundRobinPlacement(), seed=1)
        with pytest.raises(NotImplementedError):
            PlacementPolicy().place(job(0, 0.0), [StubWorker()], 0.0)

    def test_registry_covers_all_five_placements(self):
        assert set(PLACEMENTS) == {
            "round_robin",
            "least_loaded",
            "sticky",
            "power_of_two",
            "cheapest_feasible",
        }


class TestRoundRobin:
    def test_cycles_in_order(self):
        policy = RoundRobinPlacement()
        workers = [StubWorker() for _ in range(3)]
        picks = [policy.place(job(0, 0.0), workers, 0.0) for _ in range(7)]
        assert picks == [0, 1, 2, 0, 1, 2, 0]
        policy.reset()
        assert policy.place(job(0, 0.0), workers, 0.0) == 0


class TestLeastLoaded:
    def test_never_worse_than_round_robin_imbalance(self):
        """Property: on identical job streams, least-loaded's maximum
        load imbalance never exceeds round-robin's."""
        import numpy as np

        for seed in range(8):
            rng = np.random.default_rng(seed)
            services = [float(s) for s in rng.uniform(0.05, 1.0, size=60)]
            for num_workers in (2, 3, 4):
                _, ll_imbalance = drive(
                    LeastLoadedPlacement(), services, num_workers
                )
                _, rr_imbalance = drive(
                    RoundRobinPlacement(), services, num_workers
                )
                assert ll_imbalance <= rr_imbalance + 1e-9

    def test_least_loaded_imbalance_bounded_by_max_service(self):
        import numpy as np

        rng = np.random.default_rng(42)
        services = [float(s) for s in rng.uniform(0.05, 0.5, size=100)]
        loads, imbalance = drive(LeastLoadedPlacement(), services, 4)
        # greedy balancing: the spread never exceeds one job's service
        assert imbalance <= max(services) + 1e-9
        assert all(load > 0 for load in loads)

    def test_ties_break_on_lower_index(self):
        workers = [StubWorker(), StubWorker()]
        assert LeastLoadedPlacement().place(job(0, 0.0), workers, 0.0) == 0


class TestSticky:
    def test_camera_stays_on_one_worker(self):
        policy = StickyPlacement()
        workers = [StubWorker() for _ in range(4)]
        for camera_id in range(16):
            first = policy.place(job(camera_id, 0.0), workers, 0.0)
            # later jobs of the same camera land on the same worker,
            # regardless of how load shifts in between
            workers[(first + 1) % 4].load += 10.0
            for arrival in (1.0, 2.0, 3.0):
                assert policy.place(job(camera_id, arrival), workers, arrival) == first

    def test_hash_is_stable_and_spreads(self):
        policy = StickyPlacement()
        workers = [StubWorker() for _ in range(4)]
        picks = {cam: policy.place(job(cam, 0.0), workers, 0.0) for cam in range(64)}
        fresh = StickyPlacement()
        repicks = {cam: fresh.place(job(cam, 0.0), workers, 0.0) for cam in range(64)}
        assert picks == repicks  # deterministic across instances/runs
        assert len(set(picks.values())) == 4  # uses every worker


class TestPowerOfTwo:
    def test_deterministic_and_avoids_hot_worker(self):
        policy = PowerOfTwoPlacement(seed=7)
        workers = [StubWorker() for _ in range(4)]
        workers[2].load = 100.0  # one hot worker
        picks = [policy.place(job(i, 0.0), workers, 0.0) for i in range(40)]
        policy.reset()
        again = [policy.place(job(i, 0.0), workers, 0.0) for i in range(40)]
        assert picks == again
        # of two sampled workers the hot one never wins against a cold one
        assert picks.count(2) == 0

    def test_single_worker_short_circuits(self):
        assert PowerOfTwoPlacement().place(job(0, 0.0), [StubWorker()], 0.0) == 0


# ---------------------------------------------------------------------------
# cluster construction / validation
# ---------------------------------------------------------------------------
class TestClusterConstruction:
    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError, match="at least one GPU"):
            CloudCluster(num_gpus=0)
        with pytest.raises(ValueError, match="cannot be shared"):
            CloudCluster(num_gpus=2, scheduler=FifoScheduler())
        with pytest.raises(ValueError, match="unknown scheduler"):
            CloudCluster(num_gpus=2, scheduler="lifo")
        with pytest.raises(ValueError, match="unknown placement"):
            CloudCluster(num_gpus=2, placement="hash_ring")
        with pytest.raises(ValueError, match="must produce GpuScheduler"):
            CloudCluster(num_gpus=2, scheduler=lambda: object())
        shared = StalenessPriorityScheduler()
        with pytest.raises(ValueError, match="same instance"):
            CloudCluster(num_gpus=2, scheduler=lambda: shared)

    def test_factory_and_class_build_per_worker_instances(self):
        cluster = CloudCluster(num_gpus=3, scheduler=StalenessPriorityScheduler)
        assert len(cluster.schedulers) == 3
        assert len({id(s) for s in cluster.schedulers}) == 3
        assert cluster.scheduler_name == "staleness"
        assert cluster.placement_name == "round_robin"

    def test_cluster_binds_only_once(self, student, teacher):
        cluster = CloudCluster(num_gpus=2)
        first = FleetSession(
            [CameraSpec("a", build_dataset("detrac", num_frames=120))],
            student=student, teacher=teacher, config=small_config(), cluster=cluster,
        )
        first.run()
        second = FleetSession(
            [CameraSpec("a", build_dataset("detrac", num_frames=120))],
            student=student, teacher=teacher, config=small_config(), cluster=cluster,
        )
        with pytest.raises(RuntimeError, match="already bound"):
            second.run()

    def test_session_rejects_conflicting_cluster_and_knobs(self, student, teacher):
        cameras = [CameraSpec("a", build_dataset("detrac", num_frames=120))]
        with pytest.raises(ValueError, match="not both"):
            FleetSession(
                cameras, student=student, teacher=teacher,
                cluster=CloudCluster(num_gpus=2), num_gpus=2,
            )


class TestCameraSpecValidation:
    def test_bad_specs_raise_at_construction(self):
        dataset = build_dataset("detrac", num_frames=120)
        with pytest.raises(ValueError, match="weights must be positive"):
            CameraSpec("cam", dataset, weight=0.0)
        with pytest.raises(ValueError, match="weights must be positive"):
            CameraSpec("cam", dataset, weight=-2.0)
        with pytest.raises(ValueError, match="name must be non-empty"):
            CameraSpec("", dataset)

    def test_duplicate_names_rejected_with_the_culprits(self, student, teacher):
        dataset = build_dataset("detrac", num_frames=120)
        with pytest.raises(ValueError, match=r"duplicated: \['dup'\]"):
            FleetSession(
                [
                    CameraSpec("dup", dataset),
                    CameraSpec("ok", dataset),
                    CameraSpec("dup", dataset),
                ],
                student=student,
                teacher=teacher,
            )


# ---------------------------------------------------------------------------
# golden regression: 1-GPU cluster == PR 2 FIFO fleet, bit for bit
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def student() -> StudentDetector:
    return StudentDetector(StudentConfig(seed=5))


@pytest.fixture(scope="module")
def teacher() -> TeacherDetector:
    return TeacherDetector(TeacherConfig(seed=9))


def make_sharded_fleet(
    num_gpus: int,
    placement="round_robin",
    scheduler=None,
    n_cameras: int = 4,
    num_frames: int = 240,
) -> FleetSession:
    student = StudentDetector(StudentConfig(seed=5))
    teacher = TeacherDetector(TeacherConfig(seed=9))
    datasets = ["detrac", "kitti", "waymo", "stationary"]
    strategies = ["shoggoth", "ams", "shoggoth", "shoggoth"]
    cameras = [
        CameraSpec(
            name=f"cam{i}",
            dataset=build_dataset(datasets[i % 4], num_frames=num_frames),
            strategy=strategies[i % 4],
            seed=i,
        )
        for i in range(n_cameras)
    ]
    return FleetSession(
        cameras,
        student=student,
        teacher=teacher,
        config=small_config(),
        num_gpus=num_gpus,
        placement=placement,
        scheduler=scheduler,
    )


class TestGoldenOneWorkerCluster:
    def test_one_gpu_cluster_reproduces_pr2_fleet_bit_for_bit(self):
        """An explicit 1-worker CloudCluster with round-robin placement
        and the default FIFO scheduler must be indistinguishable from the
        PR 2 single-GPU fleet — including the final student weights."""
        import numpy as np

        cluster_result = FleetSession(
            make_mixed_fleet().cameras,  # same specs as the pinned fleet
            student=StudentDetector(StudentConfig(seed=5)),
            teacher=TeacherDetector(TeacherConfig(seed=9)),
            config=small_config(),
            cluster=CloudCluster(num_gpus=1, placement="round_robin",
                                 scheduler=FifoScheduler()),
        ).run()
        golden = PR1_GOLDEN
        assert cluster_result.scheduler == "fifo"
        assert cluster_result.placement == "round_robin"
        assert cluster_result.num_gpus == 1
        assert cluster_result.mean_queue_delay == pytest.approx(
            golden["mean_queue_delay"], rel=1e-12
        )
        assert cluster_result.max_queue_delay == pytest.approx(
            golden["max_queue_delay"], rel=1e-12
        )
        assert cluster_result.cloud_gpu_seconds == pytest.approx(
            golden["cloud_gpu_seconds"], rel=1e-12
        )
        assert cluster_result.cloud_busy_seconds == pytest.approx(
            golden["cloud_busy_seconds"], rel=1e-12
        )
        assert cluster_result.num_labeling_batches == golden["num_labeling_batches"]
        for name, expected in golden["gpu_seconds_by_camera"].items():
            assert cluster_result.gpu_seconds_by_camera[name] == pytest.approx(
                expected, rel=1e-12
            )
        for entry in cluster_result.cameras:
            session = entry.session
            assert session.num_uploads == golden["num_uploads"][entry.camera]
            assert session.bandwidth.uplink_bytes == golden["uplink_bytes"][entry.camera]
            assert (
                session.bandwidth.downlink_bytes == golden["downlink_bytes"][entry.camera]
            )
            assert entry.mean_upload_latency == pytest.approx(
                golden["mean_upload_latency"], rel=1e-12
            )
        # sharding metrics collapse to the single-GPU story
        assert cluster_result.gpu_busy_by_worker == [cluster_result.cloud_busy_seconds]
        assert cluster_result.num_migrations == 0
        assert cluster_result.load_imbalance == pytest.approx(1.0)
        assert cluster_result.gpu_load_fairness == pytest.approx(1.0)

        # ... and the final per-camera student weights are identical too
        fifo_result = make_mixed_fleet().run()
        for entry, other in zip(cluster_result.cameras, fifo_result.cameras):
            state = entry.session
            assert entry.camera == other.camera
            assert state.evaluated_frame_indices == other.session.evaluated_frame_indices
            for left, right in zip(
                state.detections_per_frame, other.session.detections_per_frame
            ):
                assert len(left) == len(right)
                for a, b in zip(left, right):
                    assert a.score == b.score
                    assert np.allclose(a.box, b.box)

    def test_queue_wait_lists_match_exactly(self):
        via_knobs = make_sharded_fleet(num_gpus=1).run()
        plain = make_mixed_fleet().run()
        assert via_knobs.queue_waits == plain.queue_waits
        assert via_knobs.gpu_seconds_by_camera == plain.gpu_seconds_by_camera

    def test_explicit_on_demand_worker_specs_reproduce_pr4_bit_for_bit(self):
        """A homogeneous all-on-demand WorkerSpec cluster with zero
        revocations must be indistinguishable from the spec-less PR 4
        fleet: the heterogeneous/spot machinery is invisible until a
        non-default spec or a revocation process opts in."""
        from repro.core.scheduling import WorkerSpec

        golden = PR1_GOLDEN
        specced = FleetSession(
            make_mixed_fleet().cameras,
            student=StudentDetector(StudentConfig(seed=5)),
            teacher=TeacherDetector(TeacherConfig(seed=9)),
            config=small_config(),
            worker_specs=[WorkerSpec(speed=1.0, cost_per_gpu_second=1.0,
                                     preemptible=False)],
        ).run()
        plain = make_mixed_fleet().run()
        # every shared metric is bit-for-bit (not approx) the PR 4 run
        assert specced.queue_waits == plain.queue_waits
        assert specced.training_waits == plain.training_waits
        assert specced.gpu_seconds_by_camera == plain.gpu_seconds_by_camera
        assert specced.cloud_busy_seconds == plain.cloud_busy_seconds
        assert specced.gpu_busy_by_worker == plain.gpu_busy_by_worker
        assert specced.num_labeling_batches == plain.num_labeling_batches
        assert specced.gpu_seconds_provisioned == plain.gpu_seconds_provisioned
        assert specced.mean_queue_delay == pytest.approx(
            golden["mean_queue_delay"], rel=1e-12
        )
        assert specced.cloud_gpu_seconds == pytest.approx(
            golden["cloud_gpu_seconds"], rel=1e-12
        )
        for entry, other in zip(specced.cameras, plain.cameras):
            assert entry.camera == other.camera
            assert entry.session.num_uploads == other.session.num_uploads
            assert (
                entry.session.bandwidth.uplink_bytes
                == other.session.bandwidth.uplink_bytes
            )
            assert entry.upload_latencies == other.upload_latencies
        # and the new cost axis collapses to the fixed-capacity story
        assert specced.dollar_cost == specced.gpu_seconds_provisioned
        assert specced.gpu_seconds_by_tier == {
            "on_demand": specced.gpu_seconds_provisioned
        }
        assert specced.num_revocations == 0
        assert specced.spot_fraction == 0.0
        assert plain.dollar_cost == specced.dollar_cost


# ---------------------------------------------------------------------------
# multi-GPU integration
# ---------------------------------------------------------------------------
class TestShardedFleet:
    def test_more_gpus_cut_queue_delay(self):
        solo = make_sharded_fleet(num_gpus=1, placement="least_loaded").run()
        quad = make_sharded_fleet(num_gpus=4, placement="least_loaded").run()
        assert quad.num_gpus == 4
        assert len(quad.gpu_busy_by_worker) == 4
        assert quad.mean_queue_delay < solo.mean_queue_delay
        # total GPU work is conserved (same uploads, same service model)
        assert sum(quad.gpu_busy_by_worker) == pytest.approx(quad.cloud_busy_seconds)

    def test_sticky_placement_never_migrates(self):
        result = make_sharded_fleet(num_gpus=3, placement="sticky").run()
        assert result.placement == "sticky"
        assert result.num_migrations == 0
        assert all(count == 0 for count in result.migrations_by_camera.values())

    def test_least_loaded_balances_better_than_sticky(self):
        sticky = make_sharded_fleet(num_gpus=2, placement="sticky").run()
        balanced = make_sharded_fleet(num_gpus=2, placement="least_loaded").run()
        assert balanced.load_imbalance <= sticky.load_imbalance + 1e-9
        assert 0.0 < balanced.gpu_load_fairness <= 1.0 + 1e-9

    def test_shard_aware_utilization(self):
        result = make_sharded_fleet(num_gpus=4, placement="round_robin").run()
        total_busy = sum(result.gpu_busy_by_worker)
        expected = min(1.0, total_busy / (4 * result.duration_seconds))
        assert result.cloud_utilization == pytest.approx(expected)
        assert len(result.worker_utilizations) == 4
        for fraction, busy in zip(result.worker_utilizations, result.gpu_busy_by_worker):
            assert fraction == pytest.approx(
                min(1.0, busy / result.duration_seconds)
            )
        # the naive single-GPU definition would overstate a 4-GPU cloud 4x
        naive = min(1.0, total_busy / result.duration_seconds)
        assert result.cloud_utilization <= naive

    def test_drift_scheduler_runs_sharded(self):
        session = make_sharded_fleet(
            num_gpus=2, placement="power_of_two", scheduler="drift"
        )
        result = session.run()
        assert result.scheduler == "drift"
        assert result.num_cameras == 4
        assert result.mean_queue_delay >= 0.0
        assert len(result.training_waits) > 0  # unified queue: AMS trains queued
        # φ is broadcast cluster-wide: every shard's scheduler holds the
        # same measurements, so no worker treats a measured camera as
        # unmeasured (+inf) drift just because another shard labeled it
        measured = [set(sched._phi) for sched in session.cluster.schedulers]
        assert measured[0] and all(m == measured[0] for m in measured)

    def test_per_tenant_gpu_seconds_summed_across_shards(self):
        result = make_sharded_fleet(num_gpus=2, placement="round_robin").run()
        # every camera was served somewhere, and tenant totals are bounded
        # by the cluster total (batch overhead is unattributed)
        assert all(v > 0 for v in result.gpu_seconds_by_camera.values())
        assert sum(result.gpu_seconds_by_camera.values()) <= result.cloud_gpu_seconds + 1e-9
