"""Fleet-session tests: shared cloud, shared link, per-tenant accounting."""

from __future__ import annotations

import pytest

from repro.core import CameraSpec, FleetSession, ShoggothConfig
from repro.detection import StudentConfig, StudentDetector, TeacherConfig, TeacherDetector
from repro.network.link import LinkConfig, SharedLink
from repro.video import build_dataset


def small_config() -> ShoggothConfig:
    return (
        ShoggothConfig(eval_stride=5)
        .with_training(train_batch_size=4, replay_capacity=12, minibatch_size=8, epochs=1)
        .with_sampling(initial_rate_fps=2.0)
    )


@pytest.fixture(scope="module")
def student() -> StudentDetector:
    return StudentDetector(StudentConfig(seed=5))


@pytest.fixture(scope="module")
def teacher() -> TeacherDetector:
    return TeacherDetector(TeacherConfig(seed=9))


def make_fleet(student, teacher, n, strategy="shoggoth", num_frames=240, **kwargs):
    datasets = ["detrac", "kitti", "waymo", "stationary"]
    cameras = [
        CameraSpec(
            name=f"cam{i}",
            dataset=build_dataset(datasets[i % len(datasets)], num_frames=num_frames),
            strategy=strategy,
            seed=i,
        )
        for i in range(n)
    ]
    return FleetSession(
        cameras, student=student, teacher=teacher, config=small_config(), **kwargs
    )


class TestFleetSession:
    def test_four_cameras_end_to_end(self, student, teacher):
        result = make_fleet(student, teacher, 4).run()
        assert result.num_cameras == 4
        assert result.duration_seconds == pytest.approx(8.0)
        for entry in result.cameras:
            session = entry.session
            assert session.num_uploads > 0
            assert session.bandwidth.uplink_kbps > 0
            assert len(session.detections_per_frame) == len(session.ground_truth_per_frame) > 0
        # the shared GPU served someone, and the sum of tenant shares is
        # bounded by the server total (batch overhead is unattributed)
        assert result.cloud_gpu_seconds > 0
        assert sum(result.gpu_seconds_by_camera.values()) <= result.cloud_gpu_seconds + 1e-9

    def test_heterogeneous_strategies_share_one_cloud(self, student, teacher):
        cameras = [
            CameraSpec("shog", build_dataset("detrac", num_frames=240), "shoggoth", seed=0),
            CameraSpec("ams", build_dataset("kitti", num_frames=240), "ams", seed=1),
            CameraSpec("prompt", build_dataset("stationary", num_frames=240), "prompt", seed=2),
        ]
        fleet = FleetSession(cameras, student=student, teacher=teacher, config=small_config())
        result = fleet.run()
        shog = result.session("shog")
        ams = result.session("ams")
        # Shoggoth trains on the edge, AMS in the cloud
        assert len(shog.training_windows) > 0
        assert len(ams.training_windows) == 0
        # AMS pays model downloads on top of labels
        assert ams.bandwidth.downlink_bytes > shog.bandwidth.downlink_bytes
        # AMS's cloud-side fine-tuning costs the shared GPU more than labeling
        assert result.gpu_seconds_by_camera["ams"] > result.gpu_seconds_by_camera["prompt"]

    def test_upload_latency_rises_with_fleet_size(self, student, teacher):
        latencies = []
        for n in (1, 4):
            result = make_fleet(student, teacher, n).run()
            all_lat = [
                lat for entry in result.cameras for lat in entry.upload_latencies
            ]
            assert all_lat, "fleet produced no uploads"
            latencies.append(sum(all_lat) / len(all_lat))
        assert latencies[1] > latencies[0]

    def test_queue_delay_appears_under_contention(self, student, teacher):
        solo = make_fleet(student, teacher, 1).run()
        crowd = make_fleet(student, teacher, 4).run()
        assert crowd.mean_queue_delay > solo.mean_queue_delay
        assert crowd.num_labeling_batches > 0
        assert 0.0 <= crowd.cloud_utilization <= 1.0

    def test_slow_shared_link_stretches_uploads(self, student, teacher):
        fast = make_fleet(
            student, teacher, 2,
            link=SharedLink(LinkConfig(uplink_kbps=50_000.0)),
        ).run()
        slow = make_fleet(
            student, teacher, 2,
            link=SharedLink(LinkConfig(uplink_kbps=2_000.0)),
        ).run()
        fast_lat = [l for e in fast.cameras for l in e.upload_latencies]
        slow_lat = [l for e in slow.cameras for l in e.upload_latencies]
        assert sum(slow_lat) / len(slow_lat) > sum(fast_lat) / len(fast_lat)

    def test_single_camera_fleet_close_to_standalone_session(self, student, teacher):
        """A fleet of one still pays (small) network/queue latency, but its
        detection/evaluation stream is identical to the standalone session."""
        from repro.core import CollaborativeSession, build_strategy

        dataset = build_dataset("detrac", num_frames=240)
        fleet = FleetSession(
            [CameraSpec("solo", dataset, "edge_only", seed=0)],
            student=student, teacher=teacher, config=small_config(),
        )
        fleet_session = fleet.run().session("solo")
        standalone = CollaborativeSession(
            dataset=build_dataset("detrac", num_frames=240),
            student=student.clone(),
            teacher=TeacherDetector(TeacherConfig(seed=9)),
            options=build_strategy("edge_only").options,
            config=small_config(),
            seed=0,
        ).run()
        assert fleet_session.evaluated_frame_indices == standalone.evaluated_frame_indices
        assert fleet_session.num_uploads == standalone.num_uploads == 0
        assert fleet_session.bandwidth.uplink_bytes == standalone.bandwidth.uplink_bytes == 0

    def test_validation(self, student, teacher):
        with pytest.raises(ValueError):
            FleetSession([], student=student, teacher=teacher)
        dataset = build_dataset("detrac", num_frames=60)
        with pytest.raises(ValueError):
            FleetSession(
                [CameraSpec("a", dataset), CameraSpec("a", dataset)],
                student=student,
                teacher=teacher,
            )
        result = FleetSession(
            [CameraSpec("a", dataset)], student=student, teacher=teacher,
            config=small_config(),
        ).run()
        with pytest.raises(KeyError):
            result.session("missing")
