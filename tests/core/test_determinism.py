"""Determinism gate: identical runs -> identical journals -> exact replay.

This is the test CI's ``determinism`` job runs on every push.  It
asserts the control plane's reproducibility contract end to end:

* two fleet runs with identical configuration produce **byte-identical**
  serialized journals (canonical JSON + shortest-roundtrip floats);
* replaying a journal re-executes the run event-for-event and lands on
  the *same* :class:`~repro.core.fleet.FleetResult` fingerprint as the
  live run — for the faults-off fleet and for a chaos fleet alike;
* attaching a journal is observation-only: the journaled run's result
  is bit-for-bit the un-journaled run's result (the golden pins in
  ``test_scheduling.py`` then anchor that result across PRs).

On failure each check dumps the offending journal(s) to
``REPRO_JOURNAL_ARTIFACT_DIR`` (when set — CI sets it and uploads the
directory as an artifact), so a red determinism job ships the exact
event trace needed to bisect the divergence locally via
``EventJournal.load(...).replay(...)``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.core import FaultPlan, FleetSession
from repro.eval import fleet_fingerprint
from repro.runtime.journal import EventJournal
from repro.detection import (
    StudentConfig,
    StudentDetector,
    TeacherConfig,
    TeacherDetector,
)
from repro.testing.scenarios import build_cameras, small_fleet_config

SEED = 11


def dump_on_failure(name: str, *journals: EventJournal) -> str:
    """Persist journals for CI artifact upload; returns a hint string."""
    directory = os.environ.get("REPRO_JOURNAL_ARTIFACT_DIR")
    if not directory:
        return "(set REPRO_JOURNAL_ARTIFACT_DIR to dump the journals)"
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    paths = []
    for index, journal in enumerate(journals):
        path = target / f"{name}.{index}.journal.json"
        journal.save(path)
        paths.append(str(path))
    return f"journals dumped to {paths}"


def build_fleet(faults: FaultPlan | None = None) -> FleetSession:
    """One deterministic mixed fleet; every call builds it identically."""
    return FleetSession(
        build_cameras(
            3,
            90,
            datasets=["detrac", "kitti", "waymo"],
            strategies=["shoggoth", "ams", "shoggoth"],
            seed_base=SEED,
        ),
        student=StudentDetector(StudentConfig(seed=5)),
        teacher=TeacherDetector(TeacherConfig(seed=9)),
        config=small_fleet_config(),
        scheduler="staleness",
        num_gpus=2,
        placement="least_loaded",
        faults=faults,
    )


def chaos_plan() -> FaultPlan:
    return FaultPlan(
        seed=SEED,
        loss_rate=0.12,
        duplicate_rate=0.08,
        delay_rate=0.1,
        mean_delay_seconds=0.6,
        retry_timeout_seconds=0.6,
        max_attempts=3,
        mean_time_between_crashes=5.0,
    )


def test_identical_runs_produce_byte_identical_journals():
    first, second = EventJournal(), EventJournal()
    build_fleet().run(journal=first)
    build_fleet().run(journal=second)
    assert first.serialize() == second.serialize(), (
        "two identical faults-off runs diverged; "
        + dump_on_failure("faults_off_divergence", first, second)
    )


def test_replay_matches_the_live_result():
    journal = EventJournal()
    live = build_fleet().run(journal=journal)
    report = journal.replay(build_fleet)
    assert not report.halted and report.events_checked == journal.num_events
    assert fleet_fingerprint(report.result) == fleet_fingerprint(live), (
        "journal replay landed on a different result than the live run; "
        + dump_on_failure("replay_divergence", journal)
    )


def test_journal_round_trips_through_disk_before_replay(tmp_path):
    journal = EventJournal()
    live = build_fleet().run(journal=journal)
    path = tmp_path / "run.journal.json"
    journal.save(path)
    report = EventJournal.load(path).replay(build_fleet)
    assert fleet_fingerprint(report.result) == fleet_fingerprint(live)


def test_chaos_run_is_byte_stable_and_replayable():
    first, second = EventJournal(), EventJournal()
    live = build_fleet(chaos_plan()).run(journal=first)
    build_fleet(chaos_plan()).run(journal=second)
    assert first.serialize() == second.serialize(), (
        "two identical chaos runs diverged; "
        + dump_on_failure("chaos_divergence", first, second)
    )
    report = first.replay(lambda: build_fleet(chaos_plan()))
    assert fleet_fingerprint(report.result) == fleet_fingerprint(live), (
        "chaos replay landed on a different result; "
        + dump_on_failure("chaos_replay_divergence", first)
    )
    # the chaos run actually exercised the fault machinery
    assert live.num_messages_sent > 0


def test_journaling_is_observation_only():
    """Attaching a journal must not perturb the simulation at all."""
    bare = build_fleet().run()
    journaled = build_fleet().run(journal=EventJournal())
    assert fleet_fingerprint(bare) == fleet_fingerprint(journaled)


def test_mid_run_prefix_replay_stops_cleanly():
    journal = EventJournal()
    build_fleet().run(journal=journal)
    stop_after = journal.num_events // 3
    report = journal.replay(build_fleet, stop_after=stop_after)
    assert report.halted and report.result is None
    assert report.events_checked == stop_after
    assert report.last_record is not None
    assert report.last_record["seq"] == stop_after - 1


def build_batched_fleet() -> FleetSession:
    """A latency-budget batched fleet: guarantees BatchTimeout events."""
    return FleetSession(
        build_cameras(
            3,
            90,
            datasets=["detrac", "kitti", "waymo"],
            strategies=["shoggoth", "ams", "shoggoth"],
            seed_base=SEED,
        ),
        student=StudentDetector(StudentConfig(seed=5)),
        teacher=TeacherDetector(TeacherConfig(seed=9)),
        config=small_fleet_config(),
        num_gpus=2,
        placement="least_loaded",
        batching="latency_budget",
    )


def build_spot_fleet() -> FleetSession:
    """A revocable spot fleet: guarantees RevocationEvent events."""
    from repro.core.cluster import RevocationProcess
    from repro.core.scheduling import WORKER_TIERS

    return FleetSession(
        build_cameras(
            3,
            90,
            datasets=["detrac", "kitti", "waymo"],
            strategies=["shoggoth", "ams", "shoggoth"],
            seed_base=SEED,
        ),
        student=StudentDetector(StudentConfig(seed=5)),
        teacher=TeacherDetector(TeacherConfig(seed=9)),
        config=small_fleet_config(),
        num_gpus=2,
        worker_specs=[WORKER_TIERS["spot"], WORKER_TIERS["spot"]],
        revocations=RevocationProcess(mean_uptime_seconds=2.0, seed=3),
    )


def assert_clean_halt_at(journal: EventJournal, build, boundary: int) -> None:
    """Truncated replay must halt exactly at ``boundary``, touching nothing past it.

    If a stale timer (a cancelled or superseded BatchTimeout, a
    revocation's pending restore) fired anyway, the replayed run would
    dispatch an event the journal never recorded — surfacing as a
    divergence or an events_checked drift, both asserted here.
    """
    report = journal.replay(build, stop_after=boundary)
    assert report.halted and report.result is None
    assert report.events_checked == boundary
    if boundary > 0:
        assert report.last_record is not None
        assert report.last_record["seq"] == boundary - 1


@pytest.mark.parametrize(
    ("builder", "event_type"),
    [
        (build_batched_fleet, "BatchTimeout"),
        (build_spot_fleet, "RevocationEvent"),
    ],
    ids=["batch_timeout", "revocation"],
)
def test_prefix_replay_truncates_cleanly_at_timer_boundaries(builder, event_type):
    """Halting right at / right after a timer event leaves no stale timers.

    BatchTimeout dispatches are generation-guarded and RevocationEvents
    cancel-and-restore in their handlers; truncating the replay exactly
    *at* such an event (the handler never runs) and exactly *after* it
    (the handler is the last thing that runs) are the two boundary
    cases where a leaked timer would fire into the truncated prefix.
    The same journal must then still replay in full, event-for-event —
    truncation is read-only.
    """
    journal = EventJournal()
    builder().run(journal=journal)
    seqs = [
        record["seq"]
        for record in journal.records
        if record["type"] == event_type
    ]
    assert seqs, f"fleet produced no {event_type} events to truncate at"
    boundary = seqs[len(seqs) // 2]
    assert_clean_halt_at(journal, builder, boundary)
    assert_clean_halt_at(journal, builder, boundary + 1)
    full = journal.replay(builder)
    assert not full.halted and full.events_checked == journal.num_events


def test_replay_rejects_a_differently_configured_session():
    from repro.runtime.journal import JournalDivergence

    journal = EventJournal()
    build_fleet().run(journal=journal)
    with pytest.raises(JournalDivergence, match="configured differently"):
        journal.replay(lambda: build_fleet(chaos_plan()))
