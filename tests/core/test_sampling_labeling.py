"""Tests for the φ/α signals, the sampling-rate controller and online labeling."""

from __future__ import annotations

import pytest

from repro.core import (
    LabelingConfig,
    OnlineLabeler,
    SamplingConfig,
    SamplingRateController,
    compute_phi,
    estimate_alpha,
)
from repro.detection import Detection, TeacherConfig, TeacherDetector
from repro.video import DAY_SUNNY, NIGHT, FrameRenderer, GroundTruthBox, RenderConfig
from repro.video.stream import Frame


def det(score, cx=0.5, class_id=0):
    return Detection(class_id=class_id, cx=cx, cy=0.5, w=0.2, h=0.2, score=score)


def make_frame(boxes, domain=DAY_SUNNY, index=0):
    renderer = FrameRenderer(RenderConfig(seed=0))
    return Frame(
        index=index,
        timestamp=index / 30.0,
        image=renderer.render(list(boxes), domain),
        ground_truth=tuple(boxes),
        domain_name=domain.name,
        motion=0.1,
    )


class TestPhi:
    def test_stationary_labels_give_low_phi(self):
        labels = [[det(0.9)], [det(0.9)], [det(0.9)]]
        assert compute_phi(labels) == 0.0

    def test_changing_labels_give_high_phi(self):
        labels = [[det(0.9, cx=0.1)], [det(0.9, cx=0.5)], [det(0.9, cx=0.9)]]
        assert compute_phi(labels) == 1.0

    def test_single_frame_gives_zero(self):
        assert compute_phi([[det(0.9)]]) == 0.0


class TestAlpha:
    def test_all_confident(self):
        assert estimate_alpha([[det(0.9), det(0.8)]], 0.5) == 1.0

    def test_none_confident(self):
        assert estimate_alpha([[det(0.2)]], 0.5) == 0.0

    def test_empty_frames_count_as_inaccurate(self):
        assert estimate_alpha([[], [det(0.9)]], 0.5) == 0.5

    def test_no_frames(self):
        assert estimate_alpha([], 0.5) == 0.0

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            estimate_alpha([[det(0.9)]], 0.0)


class TestController:
    def make(self, **kwargs):
        return SamplingRateController(SamplingConfig(**kwargs))

    def test_rate_stays_within_bounds(self):
        controller = self.make()
        for phi, alpha in [(1.0, 0.0), (0.0, 1.0), (0.5, 0.5)] * 5:
            rate = controller.update(phi=phi, alpha=alpha, lambda_current=0.9)
            assert 0.1 <= rate <= 2.0

    def test_fast_changing_low_accuracy_raises_rate(self):
        controller = self.make(initial_rate_fps=0.5)
        rate = controller.update(phi=1.0, alpha=0.0, lambda_current=0.9)
        assert rate > 0.5

    def test_stationary_accurate_scene_lowers_rate(self):
        controller = self.make(initial_rate_fps=1.0)
        rate = None
        for _ in range(5):
            rate = controller.update(phi=0.0, alpha=1.0, lambda_current=0.9)
        assert rate < 1.0

    def test_non_adaptive_keeps_rate(self):
        controller = self.make(adaptive=False, initial_rate_fps=2.0)
        assert controller.update(phi=1.0, alpha=0.0, lambda_current=1.0) == 2.0

    def test_history_recorded(self):
        controller = self.make()
        controller.update(phi=0.5, alpha=0.5, lambda_current=0.8)
        assert len(controller.history) == 1
        signals = controller.history[0]
        assert signals.phi == 0.5 and signals.rate_after == controller.rate

    def test_reset(self):
        controller = self.make(initial_rate_fps=1.5)
        controller.update(phi=1.0, alpha=0.0, lambda_current=1.0)
        controller.reset()
        assert controller.rate == 1.5
        assert controller.history == []

    def test_resource_trend_scales_rate(self):
        """Eq. 3: R(λ) multiplies the previous rate by (1 + Δλ)."""
        controller = self.make(initial_rate_fps=1.0, phi_target=0.5, alpha_target=0.0)
        # φ at target, α above target -> only the λ term acts
        r1 = controller.update(phi=0.5, alpha=1.0, lambda_current=0.5)
        r2 = controller.update(phi=0.5, alpha=1.0, lambda_current=0.9)
        assert r2 > r1 * 0.99  # increasing utilisation does not decrease the rate


class TestOnlineLabeler:
    def test_pseudo_labels_follow_teacher(self):
        teacher = TeacherDetector(TeacherConfig(base_miss_rate=0.0, base_false_positive_rate=0.0,
                                                base_class_confusion=0.0, seed=1))
        labeler = OnlineLabeler(teacher)
        boxes = [GroundTruthBox(0, 0.5, 0.5, 0.2, 0.2)]
        labeled = labeler.label_frame(make_frame(boxes), DAY_SUNNY)
        assert labeled.num_boxes == 1
        assert labeled.pseudo_labels[0].class_id == 0

    def test_low_confidence_labels_dropped(self):
        teacher = TeacherDetector(TeacherConfig(min_confidence=0.55, max_confidence=0.6, seed=2))
        labeler = OnlineLabeler(teacher, LabelingConfig(min_teacher_confidence=0.9))
        boxes = [GroundTruthBox(0, 0.5, 0.5, 0.2, 0.2)]
        labeled = labeler.label_frame(make_frame(boxes), DAY_SUNNY)
        assert labeled.num_boxes == 0

    def test_batch_requires_matching_lengths(self):
        labeler = OnlineLabeler(TeacherDetector())
        with pytest.raises(ValueError):
            labeler.label_batch([make_frame([])], [DAY_SUNNY, NIGHT])

    def test_gpu_seconds(self):
        labeler = OnlineLabeler(TeacherDetector(TeacherConfig(inference_seconds=0.05)))
        assert labeler.gpu_seconds(10) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            labeler.gpu_seconds(-1)
