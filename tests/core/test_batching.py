"""Cluster-wide teacher batching tests: policies, batcher, golden pin.

The unit tests drive :class:`~repro.core.batching.BatchPolicy` objects
and the :class:`~repro.core.batching.FleetBatcher` directly with stub
workers/clusters (hold + flush decisions, SLO sizing, drift jumps,
admission against the forming batch).  The integration tests run real
fleets per policy and pin two equivalences:

* ``batching=None`` (the default) is bit-for-bit the PR 1 golden
  metrics — the batching layer is invisible until opted into;
* ``batching="greedy"`` on the single-GPU FIFO fleet is *also*
  bit-for-bit the golden metrics: the per-worker FIFO busy period
  already merged everything queued behind it, so cluster-wide greedy
  coalescing changes nothing there.

Determinism of batched runs (byte-identical journals, exact replay)
rides on the same :class:`~repro.runtime.journal.EventJournal`
machinery ``tests/core/test_determinism.py`` gates.
"""

from __future__ import annotations

import pytest

from repro.core import FleetSession
from repro.core.batching import (
    BATCH_POLICIES,
    BatchPolicy,
    FleetBatcher,
    GreedyBatchPolicy,
    LatencyBudgetBatchPolicy,
    SizeCappedBatchPolicy,
    build_batch_policy,
    build_batcher,
    projected_batch_service,
)
from repro.core.scheduling import (
    LABELING,
    TRAINING,
    AdmissionControlScheduler,
    FifoScheduler,
    GpuJob,
    WorkerSpec,
)
from repro.runtime.events import BatchTimeout, EventScheduler
from repro.runtime.journal import EventJournal

from test_scheduling import PR1_GOLDEN, make_mixed_fleet


def job(
    camera_id: int,
    arrival: float,
    service: float = 0.1,
    kind: str = LABELING,
    frames: int = 2,
) -> GpuJob:
    return GpuJob(
        kind=kind,
        camera_id=camera_id,
        arrival=arrival,
        service_seconds=service,
        batch=[object()] * frames if kind == LABELING else [],
    )


class StubWorker:
    """Just enough of :class:`~repro.core.actors.CloudActor` to batch onto."""

    def __init__(self, worker_id=0, spec=None, scheduler=None, busy_until=0.0):
        self.worker_id = worker_id
        self.spec = spec or WorkerSpec()
        self.scheduler = scheduler or FifoScheduler()
        self.queue: list[GpuJob] = []
        self.rejected_jobs: list[GpuJob] = []
        self.busy_until = busy_until
        self.batch_overhead_seconds = 0.02
        self.batches: list[list[GpuJob]] = []

    def pending_gpu_seconds(self, now: float) -> float:
        backlog = sum(j.service_seconds for j in self.queue)
        return max(0.0, self.busy_until - now) + backlog

    def accept_batch(self, jobs, now, scheduler) -> None:
        for item in jobs:
            item.worker_id = self.worker_id
        self.batches.append(list(jobs))
        self.busy_until = now + 1.0  # busy: the next flush must wait


class StubCluster:
    def __init__(self, workers):
        self.active_workers = list(workers)
        self.placements: list[tuple[int, int]] = []

    def _record_placement(self, camera_id: int, worker_id: int) -> None:
        self.placements.append((camera_id, worker_id))


def bound_batcher(policy, workers) -> tuple[FleetBatcher, StubCluster, EventScheduler]:
    batcher = FleetBatcher(policy)
    cluster = StubCluster(workers)
    batcher.bind(cluster)
    return batcher, cluster, EventScheduler()


# ---------------------------------------------------------------------------
# policy registry + parameter validation
# ---------------------------------------------------------------------------
class TestBatchPolicyRegistry:
    def test_build_by_name_and_passthrough(self):
        assert isinstance(build_batch_policy(None), GreedyBatchPolicy)
        assert isinstance(build_batch_policy("latency_budget"), LatencyBudgetBatchPolicy)
        capped = build_batch_policy("size_capped", max_batch_jobs=3)
        assert capped.max_batch_jobs == 3
        instance = GreedyBatchPolicy()
        assert build_batch_policy(instance) is instance

    def test_unknown_name_and_bad_options_raise(self):
        with pytest.raises(ValueError, match="unknown batch policy"):
            build_batch_policy("nagle")
        with pytest.raises(ValueError, match="kwargs"):
            build_batch_policy(GreedyBatchPolicy(), max_batch_jobs=3)
        with pytest.raises(ValueError):
            SizeCappedBatchPolicy(max_batch_jobs=0)
        with pytest.raises(ValueError):
            LatencyBudgetBatchPolicy(max_batch_delay_seconds=-0.1)
        with pytest.raises(ValueError):
            LatencyBudgetBatchPolicy(slo_seconds=0.0)

    def test_registry_covers_all_three_policies(self):
        assert set(BATCH_POLICIES) == {"greedy", "size_capped", "latency_budget"}

    def test_build_batcher_resolution(self):
        assert build_batcher(None) is None
        batcher = build_batcher("size_capped")
        assert isinstance(batcher, FleetBatcher)
        assert batcher.policy.name == "size_capped"
        assert build_batcher(batcher) is batcher
        from_policy = build_batcher(LatencyBudgetBatchPolicy(slo_seconds=0.9))
        assert from_policy.policy.slo_seconds == 0.9

    def test_describe_names_the_parameters(self):
        assert GreedyBatchPolicy().describe() == "greedy"
        assert "max_batch_jobs=5" in SizeCappedBatchPolicy(5).describe()
        text = LatencyBudgetBatchPolicy(0.04, 0.5, phi_threshold=0.6).describe()
        assert "0.04" in text and "0.5" in text and "0.6" in text

    def test_worker_spec_batch_scaling_validation(self):
        assert WorkerSpec(batch_scaling=0.7).batch_scaling == 0.7
        assert WorkerSpec().batch_scaling == 1.0  # linear: pre-batching model
        with pytest.raises(ValueError, match="batch_scaling"):
            WorkerSpec(batch_scaling=0.0)
        with pytest.raises(ValueError, match="batch_scaling"):
            WorkerSpec(batch_scaling=1.5)


# ---------------------------------------------------------------------------
# the batch-aware service projection (the SLO sizing oracle)
# ---------------------------------------------------------------------------
class TestProjectedBatchService:
    def test_sublinear_discount_and_speed(self):
        worker = StubWorker(spec=WorkerSpec(speed=2.0, batch_scaling=0.7))
        jobs = [job(0, 0.0, service=0.10, frames=2), job(1, 0.0, service=0.20, frames=4)]
        expected = (0.02 + 0.30 * 6 ** (0.7 - 1.0)) / 2.0
        assert projected_batch_service(jobs, worker) == pytest.approx(expected)

    def test_linear_spec_and_single_frame_skip_the_discount(self):
        linear = StubWorker(spec=WorkerSpec())
        jobs = [job(0, 0.0, service=0.10, frames=2), job(1, 0.0, service=0.20, frames=4)]
        assert projected_batch_service(jobs, linear) == pytest.approx(0.32)
        scaled = StubWorker(spec=WorkerSpec(batch_scaling=0.5))
        one = [job(0, 0.0, service=0.10, frames=1)]
        assert projected_batch_service(one, scaled) == pytest.approx(0.12)

    def test_training_jobs_are_charged_nominally(self):
        worker = StubWorker(spec=WorkerSpec(batch_scaling=0.7))
        jobs = [
            job(0, 0.0, service=0.10, frames=4),
            job(1, 0.0, service=0.30, kind=TRAINING),
        ]
        expected = 0.02 + 0.30 + 0.10 * 4 ** (0.7 - 1.0)
        assert projected_batch_service(jobs, worker) == pytest.approx(expected)


# ---------------------------------------------------------------------------
# latency-budget policy decisions
# ---------------------------------------------------------------------------
class TestLatencyBudgetPolicy:
    def test_holds_until_the_delay_bound(self):
        policy = LatencyBudgetBatchPolicy(max_batch_delay_seconds=0.05)
        pending = [job(0, arrival=1.0)]
        assert not policy.ready(pending, now=1.0)
        assert not policy.ready(pending, now=1.04)
        assert policy.ready(pending, now=1.05)
        assert policy.deadline(pending, now=1.0) == pytest.approx(1.05)

    def test_take_sizes_the_batch_against_the_slo(self):
        policy = LatencyBudgetBatchPolicy(max_batch_delay_seconds=0.0, slo_seconds=0.3)
        worker = StubWorker(spec=WorkerSpec())
        # each extra job adds 0.1s of projected service; the oldest job's
        # wait (0.05) + overhead (0.02) leaves room for exactly two jobs
        pending = [job(i, arrival=0.0, service=0.1, frames=1) for i in range(5)]
        assert policy.take(pending, now=0.05, worker=worker) == 2
        # once the oldest job can't meet the SLO even alone, the sizing
        # flips to take-everything (shrinking batches can't win it back)
        huge = [job(0, arrival=0.0, service=9.0)] + pending
        assert policy.take(huge, now=0.05, worker=worker) == len(huge)
        assert policy.take(pending, now=5.0, worker=worker) == len(pending)

    def test_drift_jump_requires_a_measured_phi(self):
        policy = LatencyBudgetBatchPolicy(phi_threshold=0.5)
        hot, cold = job(0, 0.0), job(1, 0.0)
        # never-measured cameras rely on the delay bound, not the jump
        assert not policy.jump(hot, now=0.0)
        policy.on_labeled(0, phi=0.9, now=0.0)
        policy.on_labeled(1, phi=0.1, now=0.0)
        assert policy.jump(hot, now=1.0)
        assert not policy.jump(cold, now=1.0)
        policy.reset()
        assert not policy.jump(hot, now=2.0)

    def test_jump_disabled_without_a_threshold(self):
        policy = LatencyBudgetBatchPolicy()
        policy.on_labeled(0, phi=99.0, now=0.0)
        assert not policy.jump(job(0, 0.0), now=1.0)


# ---------------------------------------------------------------------------
# FleetBatcher unit behaviour (stub cluster)
# ---------------------------------------------------------------------------
class TestFleetBatcher:
    def test_greedy_flushes_to_the_fastest_idle_worker(self):
        slow = StubWorker(worker_id=0, spec=WorkerSpec(speed=1.0))
        fast = StubWorker(worker_id=1, spec=WorkerSpec(speed=2.0))
        batcher, cluster, sched = bound_batcher("greedy", [slow, fast])
        batcher.on_job(job(0, 0.0), 0.0, sched)
        # fastest idle worker first; it is then busy, so the next flush
        # falls back to the slow worker
        assert [len(batch) for batch in fast.batches] == [1]
        batcher.on_job(job(1, 0.0), 0.0, sched)
        assert [len(batch) for batch in slow.batches] == [1]
        assert cluster.placements == [(0, 1), (1, 0)]
        assert batcher.num_batches == 2 and batcher.num_batched_jobs == 2

    def test_jobs_merge_while_all_workers_are_busy(self):
        worker = StubWorker(busy_until=5.0)
        batcher, _, sched = bound_batcher("greedy", [worker])
        for camera in range(3):
            batcher.on_job(job(camera, float(camera)), float(camera), sched)
        assert len(batcher.pending) == 3 and not worker.batches
        worker.busy_until = 5.0  # still busy at t=4: nothing dispatches
        batcher.on_worker_idle(4.0, sched)
        assert not worker.batches
        worker.busy_until = 5.0 - 5.0  # idle now
        worker.busy_until = 0.0
        batcher.on_worker_idle(5.0, sched)
        assert [len(batch) for batch in worker.batches] == [3]
        assert batcher.mean_batch_jobs == pytest.approx(3.0)

    def test_size_cap_splits_the_flush(self):
        worker = StubWorker(busy_until=1.0)
        batcher, _, sched = bound_batcher(
            SizeCappedBatchPolicy(max_batch_jobs=2), [worker]
        )
        for camera in range(5):
            batcher.on_job(job(camera, 0.0), 0.0, sched)
        worker.busy_until = 0.0
        batcher.on_worker_idle(1.0, sched)
        # one worker: first flush takes 2, then the worker is busy again
        assert [len(batch) for batch in worker.batches] == [2]
        assert len(batcher.pending) == 3

    def test_rejected_job_never_enters_the_forming_batch(self):
        # the admission worker is busy for far longer than the budget
        worker = StubWorker(
            scheduler=AdmissionControlScheduler(delay_budget_seconds=0.2),
            busy_until=10.0,
        )
        batcher, _, sched = bound_batcher("greedy", [worker])
        rejected = job(0, arrival=0.0)
        assert batcher.on_job(rejected, 0.0, sched) is False
        assert worker.rejected_jobs == [rejected]
        assert not batcher.pending and batcher.num_batched_jobs == 0
        # a job whose projected wait fits the budget is admitted and
        # joins the forming batch (the worker is still busy, so it waits)
        worker.busy_until = 0.2
        accepted = job(1, arrival=0.1)
        assert batcher.on_job(accepted, 0.1, sched) is True
        assert list(batcher.pending) == [accepted]
        assert accepted not in worker.rejected_jobs

    def test_latency_budget_holds_then_timeout_flushes(self):
        worker = StubWorker()
        policy = LatencyBudgetBatchPolicy(max_batch_delay_seconds=0.05)
        batcher, _, sched = bound_batcher(policy, [worker])
        batcher.on_job(job(0, 0.0), 0.0, sched)
        # worker is idle but the hold is young: nothing dispatches yet
        assert not worker.batches and len(batcher.pending) == 1
        timer = batcher._timer
        assert isinstance(timer, BatchTimeout)
        assert timer.time == pytest.approx(0.05)
        # a second arrival inside the hold merges without re-arming
        batcher.on_job(job(1, 0.02), 0.02, sched)
        assert batcher._timer is timer and len(batcher.pending) == 2
        batcher.on_timeout(timer, sched)
        assert [len(batch) for batch in worker.batches] == [2]
        assert batcher.num_timeout_flushes == 1 and not batcher.pending

    def test_stale_timer_generations_are_ignored(self):
        worker = StubWorker()
        batcher, _, sched = bound_batcher(
            LatencyBudgetBatchPolicy(max_batch_delay_seconds=0.05), [worker]
        )
        batcher.on_job(job(0, 0.0), 0.0, sched)
        stale = BatchTimeout(time=0.05, generation=batcher._generation - 1)
        batcher.on_timeout(stale, sched)
        assert not worker.batches and len(batcher.pending) == 1

    def test_drift_jump_overrides_the_hold(self):
        worker = StubWorker()
        policy = LatencyBudgetBatchPolicy(
            max_batch_delay_seconds=10.0, slo_seconds=100.0, phi_threshold=0.5
        )
        batcher, _, sched = bound_batcher(policy, [worker])
        batcher.on_job(job(0, 0.0), 0.0, sched)
        assert not worker.batches  # held: φ never measured, long delay bound
        batcher.on_labeled(0, phi=0.9, now=0.5)  # the cluster's φ broadcast
        batcher.on_job(job(0, 1.0), 1.0, sched)
        # the hot camera's arrival jumps the hold and flushes everything
        assert [len(batch) for batch in worker.batches] == [2]
        assert batcher.num_drift_jumps == 1

    def test_bind_resets_per_run_state(self):
        worker = StubWorker()
        batcher, cluster, sched = bound_batcher("greedy", [worker])
        batcher.on_job(job(0, 0.0), 0.0, sched)
        assert batcher.num_batches == 1
        batcher.bind(cluster)
        assert batcher.num_batches == 0 and batcher.num_batched_jobs == 0
        assert not batcher.pending and batcher._timer is None


# ---------------------------------------------------------------------------
# fleet integration: golden pins + conservation per policy
# ---------------------------------------------------------------------------
def assert_matches_pr1_golden(result) -> None:
    golden = PR1_GOLDEN
    assert result.mean_queue_delay == golden["mean_queue_delay"]
    assert result.max_queue_delay == golden["max_queue_delay"]
    assert result.cloud_gpu_seconds == golden["cloud_gpu_seconds"]
    assert result.cloud_busy_seconds == golden["cloud_busy_seconds"]
    assert result.num_labeling_batches == golden["num_labeling_batches"]
    assert result.gpu_seconds_by_camera == golden["gpu_seconds_by_camera"]
    for entry in result.cameras:
        assert entry.session.num_uploads == golden["num_uploads"][entry.camera]
        assert entry.mean_upload_latency == golden["mean_upload_latency"]


class TestBatchingGoldenPin:
    def test_batching_off_is_bitforbit_pr1(self):
        result = make_mixed_fleet(batching=None).run()
        assert result.batching == "none"
        assert result.num_merged_batches == 0 and result.num_batched_jobs == 0
        assert_matches_pr1_golden(result)

    def test_greedy_on_single_gpu_fifo_is_bitforbit_pr1(self):
        # the per-worker FIFO busy period already merges everything that
        # queues behind it, so cluster-wide greedy coalescing on one GPU
        # reproduces the per-worker timings exactly — while actually
        # routing every job through the batcher
        result = make_mixed_fleet(batching="greedy").run()
        assert result.batching == "greedy"
        assert result.num_merged_batches > 0
        assert result.num_batched_jobs == len(result.queue_waits)
        assert result.num_labeled_frames > 0
        assert_matches_pr1_golden(result)


class TestBatchedFleetConservation:
    @pytest.mark.parametrize("policy", sorted(BATCH_POLICIES))
    def test_every_upload_is_labeled_exactly_once(self, policy):
        specs = [WorkerSpec(batch_scaling=0.7), WorkerSpec(batch_scaling=0.7)]
        session = make_mixed_fleet(
            batching=policy,
            num_gpus=2,
            placement="least_loaded",
            worker_specs=specs,
        )
        result = session.run()
        assert result.batching == policy
        # faults-off conservation: every camera upload was labeled (or
        # explicitly rejected), none stranded in a forming batch
        sent = sum(entry.session.num_uploads for entry in result.cameras)
        labeled = len(result.queue_waits)
        assert labeled + result.num_rejected_uploads == sent
        # exactly-once: no job appears in two workers' completion logs
        completed = [
            item
            for worker in session.cluster.workers
            for item in worker.completed_jobs
        ]
        assert len({id(item) for item in completed}) == len(completed)
        assert result.num_batched_jobs >= result.num_merged_batches > 0
        assert result.num_labeled_frames > 0
        assert result.labels_per_busy_second > 0
        # the batcher drained: nothing is still forming at the end
        assert not session.cluster.batcher.pending

    def test_batch_scaling_shrinks_busy_time_not_accounting(self):
        linear = make_mixed_fleet(batching="greedy", num_gpus=2).run()
        scaled = make_mixed_fleet(
            batching="greedy",
            num_gpus=2,
            worker_specs=[WorkerSpec(batch_scaling=0.7)] * 2,
        ).run()
        assert scaled.cloud_busy_seconds < linear.cloud_busy_seconds
        # nominal per-tenant accounting is the work represented, unchanged
        assert scaled.cloud_gpu_seconds == pytest.approx(linear.cloud_gpu_seconds)


class TestBatchedDeterminism:
    def test_batched_runs_journal_identically_and_replay(self, fleet_factory):
        def build() -> FleetSession:
            return fleet_factory(
                3,
                90,
                datasets=["detrac", "kitti", "waymo"],
                strategies=["shoggoth", "ams", "shoggoth"],
                seed_base=11,
                num_gpus=2,
                placement="least_loaded",
                batching=LatencyBudgetBatchPolicy(
                    max_batch_delay_seconds=0.04, phi_threshold=0.6
                ),
            )

        first, second = EventJournal(), EventJournal()
        build().run(journal=first)
        build().run(journal=second)
        assert first.serialize() == second.serialize()
        assert b'"batching"' in first.serialize()  # meta records the policy
        report = first.replay(build)
        assert not report.halted and report.events_checked == first.num_events

    def test_batching_knob_is_incompatible_with_a_ready_cluster(self):
        from repro.core.cluster import CloudCluster

        with pytest.raises(ValueError, match="batching"):
            make_mixed_fleet(cluster=CloudCluster(num_gpus=2), batching="greedy")
