"""Chaos shrinker tests: convergence, determinism, budget, CLI.

The shrinker is exercised against a *planted* invariant-violating bug
(``"dedup_off"`` — the cloud dedup gate waved duplicates through,
breaking upload conservation), so these tests can watch it minimise a
real failure without depending on any actual bug existing: with the
flag planted a hostile scenario goes red, and the shrinker must walk it
down to a minimal case — autoscaler/batching/crashes/partitions all
stripped, retry budget at its floor, at most the fault rates the
failure genuinely needs — the same way on every run.
"""

from __future__ import annotations

import json

import pytest

from repro.core.faults import PLANTED_BUGS
from repro.runtime.journal import canonical_dumps
from repro.testing import ChaosShrinker, chaos_scenario, run_scenario
from repro.testing.shrink import main, planted, write_fixture

#: a seed whose chaos draw fails under the planted dedup bug (its plan
#: draws a meaningful duplicate_rate); pinned by the probe test below
FAILING_SEED = 0
#: a seed whose chaos draw stays green even under the planted bug (its
#: duplicate draw is too small to ever double-handle an upload)
PASSING_SEED = 4


def hostile_scenario() -> dict:
    """The failing starting point the convergence tests minimise."""
    return chaos_scenario(FAILING_SEED, partitions=True, autoscaler=True)


def test_planted_bug_context_is_scoped():
    assert "dedup_off" not in PLANTED_BUGS
    with planted("dedup_off"):
        assert "dedup_off" in PLANTED_BUGS
    assert "dedup_off" not in PLANTED_BUGS
    with planted(None):
        assert not PLANTED_BUGS


def test_seed_probes_pin_the_test_vocabulary():
    """The seeds these tests rely on behave as documented."""
    failure, events, _ = run_scenario(hostile_scenario(), "dedup_off")
    assert failure == "upload_conservation" and events > 0
    passing = chaos_scenario(PASSING_SEED, partitions=True, autoscaler=True)
    assert run_scenario(passing, "dedup_off")[0] is None
    # and without the planted bug the hostile scenario is healthy too
    assert run_scenario(hostile_scenario())[0] is None


def test_passing_config_reports_no_failure_found():
    scenario = chaos_scenario(PASSING_SEED, partitions=True, autoscaler=True)
    shrinker = ChaosShrinker(scenario, budget=3, planted_bug="dedup_off")
    assert shrinker.shrink() is None


def test_shrinker_converges_to_a_minimal_case():
    """Every axis the failure does not need ends at its floor."""
    fixture = ChaosShrinker(
        hostile_scenario(), budget=150, planted_bug="dedup_off"
    ).shrink()
    assert fixture is not None
    assert fixture["failure"] == "upload_conservation"
    scenario = fixture["scenario"]
    plan = scenario["fault_plan"]
    # upload conservation only needs duplicated deliveries: everything
    # else must have been stripped or floored
    assert scenario["autoscaler"] is None
    assert scenario["batching"] is None
    assert plan["mean_time_between_crashes"] is None
    assert "mean_time_between_partitions" not in plan
    assert plan["max_attempts"] == 1
    assert plan["duplicate_rate"] > 0.0
    nonzero = [
        rate
        for rate in ("loss_rate", "duplicate_rate", "delay_rate")
        if plan[rate] > 0.0
    ]
    assert len(nonzero) <= 2, f"shrink left {nonzero} rates non-zero"
    assert scenario["n_cameras"] <= hostile_scenario()["n_cameras"]
    assert (
        fixture["shrunk"]["num_events"] <= fixture["original"]["num_events"]
    )
    # the shrunk case still fails exactly the recorded way
    assert (
        run_scenario(scenario, fixture["planted_bug"])[0] == fixture["failure"]
    )


def test_shrinking_is_deterministic():
    """Same failing input -> byte-identical fixture, same run count."""
    first = ChaosShrinker(hostile_scenario(), budget=60, planted_bug="dedup_off")
    second = ChaosShrinker(hostile_scenario(), budget=60, planted_bug="dedup_off")
    fixture_a, fixture_b = first.shrink(), second.shrink()
    assert canonical_dumps(fixture_a) == canonical_dumps(fixture_b)
    assert first.runs == second.runs


def test_budget_bounds_simulation_runs():
    shrinker = ChaosShrinker(
        hostile_scenario(), budget=5, planted_bug="dedup_off"
    )
    fixture = shrinker.shrink()
    # even out of budget the shrinker returns its best-so-far fixture
    assert fixture is not None and fixture["failure"] == "upload_conservation"
    assert shrinker.runs <= 5
    with pytest.raises(ValueError, match="budget"):
        ChaosShrinker(hostile_scenario(), budget=0)


def test_construction_errors_shrink_as_exception_failures():
    """A scenario that cannot even build is a failure, not a crash."""
    scenario = hostile_scenario()
    scenario["autoscaler"] = {
        "name": "step",
        "interval_seconds": 2.0,
        "window_seconds": 6.0,
        "min_gpus": scenario["num_gpus"] + 5,
        "max_gpus": scenario["num_gpus"] + 6,
        "cooldown_seconds": 3.0,
        "high_utilization": 0.85,
        "low_utilization": 0.3,
    }
    failure, events, _ = run_scenario(scenario)
    assert failure == "exception:ValueError" and events == 0
    fixture = ChaosShrinker(scenario, budget=30).shrink()
    assert fixture is not None
    assert fixture["failure"] == "exception:ValueError"
    # the broken autoscaler is the failure: it must survive the shrink
    assert fixture["scenario"]["autoscaler"] is not None


def test_fixture_round_trips_canonically(tmp_path):
    fixture = ChaosShrinker(
        hostile_scenario(), budget=20, planted_bug="dedup_off"
    ).shrink()
    path = write_fixture(fixture, str(tmp_path))
    raw = open(path, encoding="utf-8").read()
    assert raw == canonical_dumps(json.loads(raw)) + "\n"
    assert json.loads(raw) == fixture
    # idempotent: re-writing the same fixture lands on the same file
    assert write_fixture(fixture, str(tmp_path)) == path
    assert len(list(tmp_path.glob("*.json"))) == 1


def test_cli_shrinks_a_seed_into_a_fixture(tmp_path, capsys):
    code = main(
        [
            str(FAILING_SEED),
            "--partitions",
            "--autoscaler",
            "--planted-bug",
            "dedup_off",
            "--budget",
            "30",
            "--out",
            str(tmp_path),
        ]
    )
    assert code == 0
    written = list(tmp_path.glob("*.json"))
    assert len(written) == 1
    fixture = json.loads(written[0].read_text())
    assert fixture["kind"] == "chaos_regression"
    assert fixture["failure"] == "upload_conservation"
    assert "upload_conservation" in capsys.readouterr().out


def test_cli_reports_no_failure_found(tmp_path, capsys):
    code = main(
        [
            str(PASSING_SEED),
            "--partitions",
            "--autoscaler",
            "--planted-bug",
            "dedup_off",
            "--budget",
            "3",
            "--out",
            str(tmp_path),
        ]
    )
    assert code == 2
    assert "no failure found" in capsys.readouterr().out
    assert not list(tmp_path.glob("*.json"))
