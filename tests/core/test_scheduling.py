"""Scheduler subsystem tests: policy properties + FIFO regression pin.

The unit tests drive the policy objects directly with synthetic
:class:`GpuJob` queues (ordering, fairness bounds, admission).  The
integration tests run real fleets per policy, and the regression test
pins the default :class:`FifoScheduler` to the exact fleet metrics the
pre-scheduler code (PR 1, commit 6e721a3) produced for a mixed
Shoggoth/AMS fleet — the scheduler refactor must be invisible until a
non-default policy is chosen.
"""

from __future__ import annotations

import pytest

from repro.core import CameraSpec, FleetSession, ShoggothConfig
from repro.core.scheduling import (
    LABELING,
    TRAINING,
    AdmissionControlScheduler,
    DriftAwareScheduler,
    FifoScheduler,
    GpuJob,
    GpuScheduler,
    SCHEDULERS,
    StalenessPriorityScheduler,
    WeightedFairScheduler,
    build_scheduler,
    jain_fairness,
)
from repro.detection import StudentConfig, StudentDetector, TeacherConfig, TeacherDetector
from repro.video import build_dataset


def job(camera_id: int, arrival: float, service: float = 0.1, kind: str = LABELING) -> GpuJob:
    return GpuJob(kind=kind, camera_id=camera_id, arrival=arrival, service_seconds=service)


# ---------------------------------------------------------------------------
# unit tests on the policy objects
# ---------------------------------------------------------------------------
class TestSchedulerRegistry:
    def test_build_by_name_and_passthrough(self):
        assert isinstance(build_scheduler(None), FifoScheduler)
        assert isinstance(build_scheduler("staleness"), StalenessPriorityScheduler)
        instance = WeightedFairScheduler()
        assert build_scheduler(instance) is instance
        budget = build_scheduler("admission", delay_budget_seconds=0.5)
        assert budget.delay_budget_seconds == 0.5

    def test_unknown_name_and_bad_options_raise(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            build_scheduler("round_robin")
        with pytest.raises(ValueError):
            build_scheduler(FifoScheduler(), delay_budget_seconds=1.0)
        with pytest.raises(ValueError):
            AdmissionControlScheduler(delay_budget_seconds=0.0)
        with pytest.raises(ValueError):
            FifoScheduler().register_tenant(0, weight=0.0)

    def test_registry_covers_all_five_policies(self):
        assert set(SCHEDULERS) == {
            "fifo",
            "staleness",
            "weighted_fair",
            "admission",
            "drift",
        }

    def test_base_select_is_abstract(self):
        with pytest.raises(NotImplementedError):
            GpuScheduler().select([], 0.0)


class TestFifoScheduler:
    def test_selects_whole_queue_in_arrival_order(self):
        queue = [job(2, 0.0), job(0, 0.5), job(1, 1.0)]
        assert FifoScheduler().select(queue, now=1.0) == queue

    def test_training_bypasses_the_queue(self):
        # PR 1 semantics: only labeling occupies the queued GPU
        assert FifoScheduler.queue_training is False


class TestStalenessPriority:
    def test_serves_most_stale_tenant_first(self):
        sched = StalenessPriorityScheduler()
        for camera_id in (0, 1, 2):
            sched.register_tenant(camera_id)
        # camera 1 was served recently, camera 2 long ago, camera 0 never
        sched.on_served([job(1, 0.0)], completion=9.0)
        sched.on_served([job(2, 0.0)], completion=4.0)
        queue = [job(1, 9.5), job(2, 9.6), job(0, 9.7)]
        picked = sched.select(queue, now=10.0)
        assert {j.camera_id for j in picked} == {0}
        # with camera 0 gone, the longest-unserved of the rest wins
        picked = sched.select([j for j in queue if j.camera_id != 0], now=10.0)
        assert {j.camera_id for j in picked} == {2}

    def test_serves_all_jobs_of_chosen_tenant(self):
        sched = StalenessPriorityScheduler()
        queue = [job(0, 0.0), job(1, 0.1), job(0, 0.2, kind=TRAINING)]
        picked = sched.select(queue, now=1.0)
        assert [j.camera_id for j in picked] == [0, 0]
        assert {j.kind for j in picked} == {LABELING, TRAINING}

    def test_only_label_batches_reset_staleness(self):
        sched = StalenessPriorityScheduler()
        sched.on_served([job(0, 0.0, kind=TRAINING)], completion=5.0)
        assert sched.staleness(0, now=6.0) == pytest.approx(6.0)
        sched.on_served([job(0, 0.0)], completion=5.0)
        assert sched.staleness(0, now=6.0) == pytest.approx(1.0)


class TestWeightedFair:
    def simulate(self, weights: dict[int, float], rounds: int = 60, service: float = 0.1):
        """Saturated GPU: every tenant always has one job queued."""
        sched = WeightedFairScheduler()
        for camera_id, weight in weights.items():
            sched.register_tenant(camera_id, weight=weight)
        for round_index in range(rounds):
            now = round_index * service
            queue = [job(camera_id, now, service) for camera_id in weights]
            picked = sched.select(queue, now)
            sched.on_served(picked, now + service)
        return sched

    def test_equal_weights_bound_gpu_seconds_spread(self):
        service = 0.1
        sched = self.simulate({0: 1.0, 1: 1.0, 2: 1.0, 3: 1.0}, service=service)
        consumed = [sched.consumed.get(camera_id, 0.0) for camera_id in range(4)]
        # deficit round-robin: under sustained equal demand the spread is
        # bounded by one busy period's service, not growing with time
        assert max(consumed) - min(consumed) <= service + 1e-9
        assert jain_fairness(consumed) > 0.99

    def test_weights_tilt_capacity(self):
        sched = self.simulate({0: 3.0, 1: 1.0}, rounds=80)
        heavy = sched.consumed[0]
        light = sched.consumed[1]
        assert heavy > 2.0 * light
        # normalised consumption converges across tenants
        assert sched.normalized_consumption(0) == pytest.approx(
            sched.normalized_consumption(1), abs=0.2
        )

    def test_serves_least_served_queued_tenant(self):
        sched = WeightedFairScheduler()
        sched.on_served([job(0, 0.0, service=1.0)], completion=1.0)
        picked = sched.select([job(0, 1.0), job(1, 1.1)], now=2.0)
        assert {j.camera_id for j in picked} == {1}


class TestDriftAware:
    def test_unmeasured_tenants_are_served_first(self):
        sched = DriftAwareScheduler()
        sched.on_labeled(0, phi=0.9, now=1.0)
        queue = [job(0, 1.5), job(1, 1.6)]
        # camera 1 was never measured: its drift is unknown (+inf)
        picked = sched.select(queue, now=2.0)
        assert {j.camera_id for j in picked} == {1}

    def test_highest_measured_phi_wins(self):
        sched = DriftAwareScheduler()
        sched.on_labeled(0, phi=0.05, now=1.0)  # stationary camera
        sched.on_labeled(1, phi=0.80, now=1.9)  # drifting camera, fresher too
        # the stationary camera has waited longer — φ overrules staleness
        queue = [job(0, 1.0), job(1, 1.9)]
        picked = sched.select(queue, now=2.0)
        assert {j.camera_id for j in picked} == {1}
        assert sched.phi(1) == pytest.approx(0.80)

    def test_ties_fall_back_to_staleness(self):
        sched = DriftAwareScheduler()
        sched.on_labeled(0, phi=0.5, now=1.5)  # camera 0 labeled more recently
        sched.on_labeled(1, phi=0.5, now=1.0)
        picked = sched.select([job(0, 1.6), job(1, 1.6)], now=2.0)
        assert {j.camera_id for j in picked} == {1}
        # the staleness clock lives in on_labeled (broadcast cluster-wide),
        # so a worker that merely observed the service keeps the same clock
        assert sched.staleness(0, now=2.0) == pytest.approx(0.5)

    def test_never_labeled_camera_has_infinite_phi_and_epoch_staleness(self):
        sched = DriftAwareScheduler()
        # never measured: drift is unknown, treated as maximally urgent
        assert sched.phi(7) == float("inf")
        # never labeled: the staleness clock runs from the epoch (t=0)
        assert sched.staleness(7, now=3.5) == pytest.approx(3.5)
        sched.on_labeled(7, phi=0.2, now=3.0)
        assert sched.phi(7) == pytest.approx(0.2)
        assert sched.staleness(7, now=3.5) == pytest.approx(0.5)

    def test_two_unmeasured_tenants_tie_break_on_staleness_then_id(self):
        sched = DriftAwareScheduler()
        # both φ = +inf, both staleness clocks from the epoch: the
        # remaining tie-breaks are arrival order then camera id, so the
        # selection is deterministic even with no signal at all
        picked = sched.select([job(3, 1.2), job(2, 1.1)], now=2.0)
        assert {j.camera_id for j in picked} == {2}
        # and a measured-but-huge φ still loses to never-measured
        sched.on_labeled(2, phi=1e9, now=2.0)
        picked = sched.select([job(3, 2.1), job(2, 2.2)], now=3.0)
        assert {j.camera_id for j in picked} == {3}

    def test_serves_all_jobs_of_chosen_tenant_and_resets(self):
        sched = DriftAwareScheduler()
        sched.on_labeled(0, phi=0.9, now=1.0)
        sched.on_labeled(1, phi=0.1, now=1.0)
        queue = [job(0, 1.1), job(1, 1.2), job(0, 1.3, kind=TRAINING)]
        picked = sched.select(queue, now=2.0)
        assert [j.camera_id for j in picked] == [0, 0]
        sched.reset()
        assert sched.phi(0) == float("inf")
        assert sched.queue_training  # unified queue like the other non-FIFO policies


class TestAdmissionControl:
    def test_rejects_only_over_budget_labeling(self):
        sched = AdmissionControlScheduler(delay_budget_seconds=0.2)
        # idle GPU: everything is admitted
        assert sched.admit(job(0, 0.0), [], now=0.0, busy_until=0.0)
        # projected wait 0.5s > 0.2s budget: the upload is turned away
        assert not sched.admit(job(0, 1.0), [], now=1.0, busy_until=1.5)
        # training is never rejected (the labels were already paid for)
        assert sched.admit(job(0, 1.0, kind=TRAINING), [], now=1.0, busy_until=1.5)

    def test_service_order_is_fifo(self):
        queue = [job(0, 0.0), job(1, 0.2)]
        assert AdmissionControlScheduler().select(queue, now=1.0) == queue


class TestJainFairness:
    def test_bounds_and_extremes(self):
        assert jain_fairness([]) == 1.0
        assert jain_fairness([5.0, 5.0, 5.0]) == pytest.approx(1.0)
        # all capacity to one of n tenants -> 1/n
        assert jain_fairness([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)


# ---------------------------------------------------------------------------
# fleet integration + the FIFO regression pin
# ---------------------------------------------------------------------------
def small_config() -> ShoggothConfig:
    return (
        ShoggothConfig(eval_stride=5)
        .with_training(train_batch_size=4, replay_capacity=12, minibatch_size=8, epochs=1)
        .with_sampling(initial_rate_fps=2.0)
    )


def make_mixed_fleet(
    scheduler=None, weights=None, num_frames=240, **fleet_kwargs
) -> FleetSession:
    """The pinned fleet: three Shoggoth cameras plus one AMS camera.

    Extra keyword arguments pass through to :class:`FleetSession`, so
    golden-pin variants (cluster shapes, ``batching=...``) reuse the
    exact same cameras and config.
    """
    student = StudentDetector(StudentConfig(seed=5))
    teacher = TeacherDetector(TeacherConfig(seed=9))
    datasets = ["detrac", "kitti", "waymo", "stationary"]
    strategies = ["shoggoth", "ams", "shoggoth", "shoggoth"]
    cameras = [
        CameraSpec(
            name=f"cam{i}",
            dataset=build_dataset(datasets[i % 4], num_frames=num_frames),
            strategy=strategies[i % 4],
            seed=i,
            weight=(weights[i] if weights else 1.0),
        )
        for i in range(4)
    ]
    return FleetSession(
        cameras,
        student=student,
        teacher=teacher,
        config=small_config(),
        scheduler=scheduler,
        **fleet_kwargs,
    )


#: exact fleet metrics produced by the pre-scheduler code (PR 1, commit
#: 6e721a3) for ``make_mixed_fleet()`` — the FIFO default must reproduce
#: them bit-for-bit
PR1_GOLDEN = dict(
    mean_queue_delay=0.12749999999999995,
    max_queue_delay=0.16999999999999993,
    cloud_gpu_seconds=3.0899999999999994,
    cloud_busy_seconds=3.2000000000000006,
    num_labeling_batches=10,
    gpu_seconds_by_camera={
        "cam0": 0.7500000000000001,
        "cam1": 0.8400000000000002,
        "cam2": 0.7500000000000001,
        "cam3": 0.7500000000000001,
    },
    num_uploads={"cam0": 5, "cam1": 5, "cam2": 5, "cam3": 5},
    uplink_bytes={"cam0": 361720, "cam1": 361720, "cam2": 361720, "cam3": 361720},
    downlink_bytes={"cam0": 3632, "cam1": 407980, "cam2": 3352, "cam3": 2820},
    mean_upload_latency=0.2515007999999998,
)


class TestFifoRegression:
    def test_fifo_reproduces_pr1_fleet_metrics_exactly(self):
        result = make_mixed_fleet().run()  # default scheduler is FIFO
        golden = PR1_GOLDEN
        assert result.scheduler == "fifo"
        assert result.mean_queue_delay == pytest.approx(
            golden["mean_queue_delay"], rel=1e-12
        )
        assert result.max_queue_delay == pytest.approx(
            golden["max_queue_delay"], rel=1e-12
        )
        assert result.cloud_gpu_seconds == pytest.approx(
            golden["cloud_gpu_seconds"], rel=1e-12
        )
        assert result.cloud_busy_seconds == pytest.approx(
            golden["cloud_busy_seconds"], rel=1e-12
        )
        assert result.num_labeling_batches == golden["num_labeling_batches"]
        for name, expected in golden["gpu_seconds_by_camera"].items():
            assert result.gpu_seconds_by_camera[name] == pytest.approx(
                expected, rel=1e-12
            )
        for entry in result.cameras:
            session = entry.session
            assert session.num_uploads == golden["num_uploads"][entry.camera]
            assert session.bandwidth.uplink_bytes == golden["uplink_bytes"][entry.camera]
            assert session.bandwidth.downlink_bytes == golden["downlink_bytes"][entry.camera]
            assert entry.mean_upload_latency == pytest.approx(
                golden["mean_upload_latency"], rel=1e-12
            )
        # PR 1 never queued training and never rejected uploads
        assert result.training_waits == []
        assert result.num_rejected_uploads == 0


class TestPoliciesEndToEnd:
    def test_staleness_and_weighted_fair_queue_training(self):
        """Unified queue: the AMS camera's fine-tuning shares the GPU."""
        for policy in ("staleness", "weighted_fair", "drift"):
            result = make_mixed_fleet(scheduler=policy).run()
            assert result.scheduler == policy
            assert len(result.training_waits) > 0
            assert result.num_rejected_uploads == 0
            # per-tenant busy periods split the merged FIFO batches
            assert result.num_labeling_batches > PR1_GOLDEN["num_labeling_batches"]

    def test_admission_never_exceeds_delay_budget(self):
        budget = 0.05
        result = make_mixed_fleet(
            scheduler=AdmissionControlScheduler(delay_budget_seconds=budget)
        ).run()
        assert result.max_queue_delay <= budget + 1e-9
        assert result.num_rejected_uploads > 0
        # un-admitted uploads still paid uplink bandwidth but got no labels
        rejected_cameras = [
            entry for entry in result.cameras if entry.rejected_uploads > 0
        ]
        assert rejected_cameras
        fifo = make_mixed_fleet().run()
        for entry in rejected_cameras:
            assert (
                entry.session.bandwidth.downlink_bytes
                < fifo.session(entry.camera).bandwidth.downlink_bytes
            )

    def test_weighted_fair_respects_weights_under_saturation(self):
        """With a 4x-weighted tenant, its normalised share never lags."""
        result = make_mixed_fleet(
            scheduler="weighted_fair", weights=[4.0, 1.0, 1.0, 1.0]
        ).run()
        assert result.scheduler == "weighted_fair"
        assert 0.0 < result.gpu_fairness <= 1.0 + 1e-9

    def test_scheduler_name_threaded_through_fleet_result(self):
        result = make_mixed_fleet(scheduler="staleness", num_frames=120).run()
        assert result.scheduler == "staleness"
        assert result.rejected_by_camera == {f"cam{i}": 0 for i in range(4)}

    def test_invalid_weight_rejected(self):
        with pytest.raises(ValueError, match="weights must be positive"):
            make_mixed_fleet(weights=[0.0, 1.0, 1.0, 1.0])

    def test_reused_scheduler_instance_is_reset_between_fleets(self):
        """A stateful scheduler carried into a second fleet must behave
        as if freshly constructed (clocks and deficits cleared)."""
        instance = StalenessPriorityScheduler()
        make_mixed_fleet(scheduler=instance, num_frames=120).run()
        assert instance._last_labeled  # the first run left state behind
        reused = make_mixed_fleet(scheduler=instance, num_frames=120).run()
        fresh = make_mixed_fleet(
            scheduler=StalenessPriorityScheduler(), num_frames=120
        ).run()
        assert reused.queue_waits == fresh.queue_waits
        assert reused.gpu_seconds_by_camera == fresh.gpu_seconds_by_camera
