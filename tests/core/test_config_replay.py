"""Tests for the Shoggoth configuration objects and the replay memory (Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AdaptiveTrainingConfig,
    LabelingConfig,
    ReplayItem,
    ReplayMemory,
    SamplingConfig,
    ShoggothConfig,
    paper_scale_config,
)
from repro.detection import GridCodec
from repro.video import GroundTruthBox


class TestConfigs:
    def test_defaults_valid(self):
        config = ShoggothConfig()
        assert config.training.replay_layer == "pool"
        assert config.sampling.min_rate_fps == pytest.approx(0.1)
        assert config.sampling.max_rate_fps == pytest.approx(2.0)

    def test_paper_scale_values(self):
        config = paper_scale_config()
        assert config.training.train_batch_size == 300
        assert config.training.replay_capacity == 1500
        assert config.training.minibatch_size == 64
        assert config.training.epochs == 8

    def test_with_training_and_sampling(self):
        config = ShoggothConfig()
        changed = config.with_training(replay_layer="input").with_sampling(adaptive=False)
        assert changed.training.replay_layer == "input"
        assert not changed.sampling.adaptive
        # original untouched
        assert config.training.replay_layer == "pool"

    def test_training_validation(self):
        with pytest.raises(ValueError):
            AdaptiveTrainingConfig(train_batch_size=0)
        with pytest.raises(ValueError):
            AdaptiveTrainingConfig(front_lr_scale=2.0)
        with pytest.raises(ValueError):
            AdaptiveTrainingConfig(learning_rate=-0.1)

    def test_sampling_validation(self):
        with pytest.raises(ValueError):
            SamplingConfig(min_rate_fps=2.0, max_rate_fps=0.1)
        with pytest.raises(ValueError):
            SamplingConfig(initial_rate_fps=5.0)
        with pytest.raises(ValueError):
            SamplingConfig(confidence_threshold=1.0)

    def test_labeling_validation(self):
        with pytest.raises(ValueError):
            LabelingConfig(min_teacher_confidence=1.0)

    def test_eval_stride_validation(self):
        with pytest.raises(ValueError):
            ShoggothConfig(eval_stride=0)


def make_items(count, start=0):
    codec = GridCodec(4)
    items = []
    for i in range(count):
        targets = codec.encode([GroundTruthBox(0, 0.5, 0.5, 0.2, 0.2)])
        items.append(ReplayItem(activation=np.full((2, 2), start + i, dtype=float), targets=targets))
    return items


class TestReplayMemory:
    def test_fills_until_capacity(self):
        memory = ReplayMemory(capacity=10)
        memory.update(make_items(4))
        assert len(memory) == 4
        memory.update(make_items(4))
        assert len(memory) == 8
        memory.update(make_items(4))
        assert len(memory) == 10  # clipped at capacity

    def test_replacement_keeps_capacity(self):
        memory = ReplayMemory(capacity=6)
        for i in range(10):
            memory.update(make_items(6, start=i * 10))
        assert len(memory) == 6
        assert memory.training_runs == 10

    def test_replacement_count_follows_algorithm(self):
        """Once full, roughly Msize/i items are replaced per run."""
        memory = ReplayMemory(capacity=8, seed=1)
        memory.update(make_items(8, start=0))       # run 1 fills
        before = [item.activation[0, 0] for item in memory.items]
        memory.update(make_items(8, start=100))     # run 2: h = 8/2 = 4 replacements
        after = [item.activation[0, 0] for item in memory.items]
        replaced = sum(1 for b, a in zip(before, after) if b != a)
        assert replaced == 4

    def test_memory_spans_many_past_batches(self):
        """Reservoir-style refresh keeps a spread of past batches in memory,
        not just the most recent ones (the forgetting-prevention property)."""
        memory = ReplayMemory(capacity=12, seed=0)
        memory.update(make_items(12, start=0))
        for i in range(1, 20):
            memory.update(make_items(12, start=i * 100))
        batches = {int(item.activation[0, 0] // 100) for item in memory.items}
        assert len(batches) >= 4           # diverse history, not a FIFO of the last batch
        assert min(batches) < 15           # includes something well before the latest batches

    def test_sample(self):
        memory = ReplayMemory(capacity=10, seed=0)
        memory.update(make_items(10))
        assert len(memory.sample(4)) == 4
        assert len(memory.sample(50)) == 10

    def test_insertion_ages(self):
        memory = ReplayMemory(capacity=4)
        memory.update(make_items(4))
        memory.update([])
        ages = memory.insertion_ages()
        assert np.all(ages == 1)

    def test_empty_update_counts_run(self):
        memory = ReplayMemory(capacity=4)
        memory.update([])
        assert memory.training_runs == 1 and len(memory) == 0

    def test_clear(self):
        memory = ReplayMemory(capacity=4)
        memory.update(make_items(4))
        memory.clear()
        assert len(memory) == 0

    def test_invalid(self):
        with pytest.raises(ValueError):
            ReplayMemory(0)
        with pytest.raises(ValueError):
            ReplayMemory(4).sample(-1)

    @settings(deadline=None, max_examples=20)
    @given(capacity=st.integers(2, 20), batches=st.integers(1, 15), batch_size=st.integers(1, 8))
    def test_never_exceeds_capacity(self, capacity, batches, batch_size):
        memory = ReplayMemory(capacity=capacity, seed=3)
        for i in range(batches):
            memory.update(make_items(batch_size, start=i * 50))
            assert len(memory) <= capacity
