"""Behaviour-preservation proof for the event-kernel refactor.

The golden numbers below were captured by running the *seed-state*
monolithic ``CollaborativeSession.run()`` loop (commit c7a4771, before
the actor/event decomposition) on a fixed 300-frame detrac stream with
fixed seeds.  The refactored facade must reproduce them bit-for-bit:
same uploads, same transferred bytes, same GPU time, same training
window boundaries (which depend on the exact RNG consumption order of
the trainer), same FPS trace, and — for the adaptive strategies — the
same final student weights.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CollaborativeSession, ShoggothConfig, build_strategy
from repro.detection import StudentConfig, StudentDetector, TeacherConfig, TeacherDetector
from repro.video import build_dataset

#: metrics recorded from the seed-state monolithic loop (see module docstring)
SEED_STATE_GOLDEN = {
    "shoggoth": dict(
        num_uploads=6,
        uplink_bytes=434064,
        downlink_bytes=4336,
        cloud_gpu_seconds=0.9000000000000001,
        training_window_ends=[2.662, 5.672763, 8.675454],
        average_fps=29.234674402730377,
        weight_checksum=3606.6471648062834,
    ),
    "ams": dict(
        num_uploads=6,
        uplink_bytes=434064,
        downlink_bytes=611740,
        cloud_gpu_seconds=1.0500000000000003,
        training_window_ends=[],
        average_fps=30.0,
        weight_checksum=3606.6471648062834,
    ),
    "edge_only": dict(
        num_uploads=0,
        uplink_bytes=0,
        downlink_bytes=0,
        cloud_gpu_seconds=0.0,
        training_window_ends=[],
        average_fps=30.0,
        weight_checksum=None,
    ),
    "cloud_only": dict(
        num_uploads=0,
        uplink_bytes=3070484,
        downlink_bytes=3726136,
        cloud_gpu_seconds=15.000000000000078,
        training_window_ends=[],
        average_fps=9.716629402313284,
        weight_checksum=None,
    ),
    "prompt": dict(
        num_uploads=6,
        uplink_bytes=434064,
        downlink_bytes=4336,
        cloud_gpu_seconds=0.9000000000000001,
        training_window_ends=[2.662, 5.672763, 8.675454],
        average_fps=29.234674402730377,
        weight_checksum=None,
    ),
}


def golden_config() -> ShoggothConfig:
    return (
        ShoggothConfig(eval_stride=5)
        .with_training(train_batch_size=4, replay_capacity=12, minibatch_size=8, epochs=1)
        .with_sampling(initial_rate_fps=2.0)
    )


@pytest.fixture(scope="module")
def base_student() -> StudentDetector:
    return StudentDetector(StudentConfig(seed=5))


@pytest.mark.parametrize("name", sorted(SEED_STATE_GOLDEN))
def test_refactored_session_matches_seed_state(name, base_student):
    golden = SEED_STATE_GOLDEN[name]
    dataset = build_dataset("detrac", num_frames=300)
    teacher = TeacherDetector(TeacherConfig(seed=9))
    student = base_student.clone()
    session = CollaborativeSession(
        dataset=dataset,
        student=student,
        teacher=teacher,
        options=build_strategy(name).options,
        config=golden_config(),
        seed=0,
    )
    result = session.run()

    assert result.num_uploads == golden["num_uploads"]
    assert result.bandwidth.uplink_bytes == golden["uplink_bytes"]
    assert result.bandwidth.downlink_bytes == golden["downlink_bytes"]
    assert result.cloud_gpu_seconds == pytest.approx(
        golden["cloud_gpu_seconds"], rel=1e-12
    )
    assert [round(w.end, 6) for w in result.training_windows] == pytest.approx(
        golden["training_window_ends"]
    )
    assert result.average_fps == pytest.approx(golden["average_fps"], rel=1e-12)

    if golden["weight_checksum"] is not None:
        checksum = float(sum(np.abs(v).sum() for v in student.state_dict().values()))
        assert checksum == pytest.approx(golden["weight_checksum"], rel=1e-12)
