"""Multi-region federation: golden pins, selectors, failover, replication.

The contract under test, in order of importance:

* **golden pin** — ``regions=None`` is untouched by the federation
  layer, and a *degenerate* federation (one region, free WAN, no
  outages, no replication) reproduces the plain single-cluster run
  **bit-for-bit**: same :meth:`~repro.core.fleet.FleetResult.fingerprint`,
  byte-identical journal — with and without chaos;
* **region selection** — each :class:`~repro.core.federation.RegionSelector`
  homes cameras by its objective, above the per-cluster placement;
* **cross-region failover** — a scripted
  :class:`~repro.runtime.events.RegionOutageEvent` drains the region
  through the same preempt/handoff path crashes use, re-homes its
  cameras onto healthy regions, and the heal re-provisions the torn
  capacity (append-only worker ids throughout);
* **replication** — the periodic weight broadcast bills WAN egress and
  hands a migrated camera a near-fresh student;
* **accounting closure** — the billed dollar total is exactly
  per-region compute plus per-link WAN egress.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FaultPlan, FleetSession
from repro.core.federation import (
    SELECTORS,
    CheapestSelector,
    Federation,
    LeastLoadedSelector,
    NearestLatencySelector,
    RegionSpec,
    StickyFailoverSelector,
    build_selector,
)
from repro.core.scheduling import WORKER_TIERS
from repro.detection import (
    StudentConfig,
    StudentDetector,
    TeacherConfig,
    TeacherDetector,
)
from repro.eval import fleet_fingerprint
from repro.network.link import WanProfile
from repro.runtime.journal import EventJournal
from repro.testing.scenarios import build_cameras, small_fleet_config

NEAR = WanProfile(rtt_seconds=0.02, cost_per_gb=0.08)
FAR = WanProfile(rtt_seconds=0.15, cost_per_gb=0.01)


def build_fleet(n_cameras: int = 3, num_frames: int = 60, **kwargs) -> FleetSession:
    """The suite's standard deterministic fleet, with federation knobs."""
    return FleetSession(
        build_cameras(n_cameras, num_frames),
        student=StudentDetector(StudentConfig(seed=5)),
        teacher=TeacherDetector(TeacherConfig(seed=9)),
        config=small_fleet_config(),
        **kwargs,
    )


def two_regions(**kwargs) -> list[RegionSpec]:
    return [
        RegionSpec(name="near", wan=NEAR, **kwargs),
        RegionSpec(name="far", wan=FAR, **kwargs),
    ]


def chaos_plan() -> FaultPlan:
    return FaultPlan(
        seed=13,
        loss_rate=0.1,
        duplicate_rate=0.05,
        delay_rate=0.08,
        retry_timeout_seconds=0.6,
        max_attempts=3,
        mean_time_between_crashes=4.0,
        mean_time_between_partitions=5.0,
        mean_partition_seconds=1.0,
    )


# ---------------------------------------------------------------------------
# golden pins
# ---------------------------------------------------------------------------
def test_degenerate_federation_is_bit_identical_to_plain():
    """One free-WAN region must reproduce the plain run byte-for-byte."""
    plain_journal, fed_journal = EventJournal(), EventJournal()
    plain = build_fleet().run(journal=plain_journal)
    federated = build_fleet(regions=[RegionSpec(name="solo")]).run(
        journal=fed_journal
    )
    assert fleet_fingerprint(plain) == fleet_fingerprint(federated)
    assert plain_journal.serialize() == fed_journal.serialize()
    # the degenerate run journals and fingerprints NO region block at
    # all — pre-federation journals stay replayable forever
    assert "regions" not in fed_journal.meta
    assert federated.region_metrics == []


def test_degenerate_federation_pin_holds_under_chaos():
    """The pin survives the full fault machinery (the hard half: the
    degenerate federation must consume the *legacy* partition stream and
    schedule every crash/retry in the plain order)."""
    plain_journal, fed_journal = EventJournal(), EventJournal()
    plain = build_fleet(num_frames=90, faults=chaos_plan()).run(
        journal=plain_journal
    )
    federated = build_fleet(
        num_frames=90, regions=[RegionSpec(name="solo")], faults=chaos_plan()
    ).run(journal=fed_journal)
    assert fleet_fingerprint(plain) == fleet_fingerprint(federated)
    assert plain_journal.serialize() == fed_journal.serialize()
    assert plain.num_messages_sent > 0  # the chaos actually ran


def test_degenerate_requires_free_wan():
    """A paid-WAN single region is NOT degenerate: it meters and bills."""
    result = build_fleet(
        regions=[RegionSpec(name="paid", wan=WanProfile(cost_per_gb=5.0))]
    ).run()
    assert result.region_metrics, "paid WAN must surface region telemetry"
    assert result.wan_bytes > 0.0
    assert result.wan_dollar_cost == pytest.approx(
        result.wan_bytes / 1e9 * 5.0
    )


def test_federated_chaos_run_is_byte_stable_and_replayable():
    def build():
        return build_fleet(
            n_cameras=4,
            regions=two_regions(),
            region_selector="nearest",
            faults=chaos_plan(),
            region_outages=[(1.0, 2.5, 0)],
            replication_interval_seconds=1.0,
        )

    first, second = EventJournal(), EventJournal()
    live = build().run(journal=first)
    build().run(journal=second)
    assert first.serialize() == second.serialize()
    report = first.replay(build)
    assert not report.halted
    assert fleet_fingerprint(report.result) == fleet_fingerprint(live)


# ---------------------------------------------------------------------------
# region selection
# ---------------------------------------------------------------------------
def test_selector_registry_round_trips():
    for name in SELECTORS:
        assert build_selector(name).name == name
    selector = NearestLatencySelector()
    assert build_selector(selector) is selector
    assert build_selector(None).name == "sticky"
    with pytest.raises(ValueError, match="unknown region selector"):
        build_selector("teleport")


def test_nearest_selector_homes_on_lowest_rtt():
    federation = Federation(two_regions(), selector="nearest")
    pick = federation.selector.pick(0, federation.healthy_regions, 0.0, federation)
    assert pick.name == "near"


def test_cheapest_selector_prefers_cheap_compute_then_cheap_egress():
    specs = [
        RegionSpec(
            name="ondemand", wan=NEAR, worker_specs=WORKER_TIERS["on_demand"]
        ),
        RegionSpec(name="spot", wan=FAR, worker_specs=WORKER_TIERS["spot"]),
    ]
    federation = Federation(specs, selector="cheapest")
    pick = federation.selector.pick(0, federation.healthy_regions, 0.0, federation)
    assert pick.name == "spot", "spot compute is cheaper; egress only ties"
    # equal compute -> the cheaper egress wins (FAR at $0.01/GB)
    federation = Federation(two_regions(), selector="cheapest")
    pick = federation.selector.pick(0, federation.healthy_regions, 0.0, federation)
    assert pick.name == "far"


def test_least_loaded_selector_spreads_a_fresh_fleet():
    session = build_fleet(
        n_cameras=4, regions=two_regions(), region_selector="least_loaded"
    )
    result = session.run()
    homed = [m["num_cameras_homed"] for m in result.region_metrics]
    assert homed == [2, 2], f"fresh fleet should spread evenly, got {homed}"


def test_sticky_selector_keeps_homes_until_forced():
    federation = Federation(two_regions(), selector="sticky")
    federation.home[0] = 1  # camera 0 currently far
    pick = federation.selector.pick(0, federation.healthy_regions, 0.0, federation)
    assert pick.index == 1, "sticky must not chase latency"
    # once its home is unavailable, it fails over to the nearest
    pick = federation.selector.pick(0, [federation.regions[0]], 0.0, federation)
    assert pick.index == 0


# ---------------------------------------------------------------------------
# cross-region failover
# ---------------------------------------------------------------------------
def test_scripted_outage_fails_over_and_heals():
    session = build_fleet(
        n_cameras=4,
        num_frames=90,
        regions=two_regions(),
        region_selector="nearest",
        region_outages=[(1.0, 3.0, 0)],
    )
    result = session.run()
    assert result.num_region_outages == 1
    near, far = result.region_metrics
    assert near["num_outages"] == 1 and far["num_outages"] == 0
    # cut: all 4 cameras leave near; heal: nearest re-homes them back
    assert near["num_migrations_away"] == 4 and far["num_migrations_in"] == 4
    assert near["num_migrations_in"] == 4 and far["num_migrations_away"] == 4
    assert result.num_region_migrations == 8
    # the healed region re-provisioned its torn-down workers with fresh
    # ids — never reusing one
    for cluster in session.clusters:
        ids = [worker.worker_id for worker in cluster.workers]
        assert ids == list(range(len(cluster.workers)))
    assert session.federation.regions[0].cluster.num_outages == 1
    assert not session.federation.regions[0].down


def test_sticky_failover_does_not_rehome_on_heal():
    session = build_fleet(
        n_cameras=4,
        num_frames=90,
        regions=two_regions(),
        region_selector="sticky",
        region_outages=[(1.0, 3.0, 0)],
    )
    result = session.run()
    near, far = result.region_metrics
    assert near["num_migrations_away"] == 4 and far["num_migrations_in"] == 4
    assert far["num_migrations_away"] == 0, "sticky cameras stay failed over"
    assert result.num_region_migrations == 4
    assert near["num_cameras_homed"] == 0 and far["num_cameras_homed"] == 4


def test_failover_off_is_partition_only():
    """``failover=False`` degrades an outage to a WAN cut: nothing moves,
    no capacity is torn down, and the region resumes on heal."""
    session = build_fleet(
        n_cameras=4,
        num_frames=90,
        regions=two_regions(),
        region_selector="nearest",
        region_outages=[(1.0, 3.0, 0)],
        failover=False,
    )
    result = session.run()
    assert result.num_region_outages == 1
    assert result.num_region_migrations == 0
    assert result.num_region_job_handoffs == 0
    near, _ = result.region_metrics
    assert near["num_cameras_homed"] == 4
    # upload conservation still holds: transfers queued behind the cut
    # drain after the heal (or the retry budget abandons them)
    labeled = len(result.queue_waits)
    sent = sum(entry.session.num_uploads for entry in result.cameras)
    assert labeled + result.num_rejected_uploads == sent


def test_outage_beats_no_failover_on_labels():
    """With a region down for most of the run, failover must deliver
    strictly more labels — the claim ``bench_federation.py`` measures.

    The no-failover arm needs a *finite retry budget* to actually lose
    anything: under an infinitely patient link, partitioned uploads
    just queue behind the cut and drain late.  A zero-rate fault plan
    adds exactly that budget and no other chaos.
    """

    def run(failover: bool):
        return build_fleet(
            n_cameras=4,
            num_frames=120,
            regions=two_regions(),
            region_selector="nearest",
            region_outages=[(1.0, 10.0, 0)],
            failover=failover,
            faults=FaultPlan(
                seed=1, retry_timeout_seconds=0.4, max_attempts=3
            ),
        ).run()

    with_failover, without = run(True), run(False)
    assert with_failover.num_labeled_frames > without.num_labeled_frames
    assert without.num_abandoned_uploads > 0, (
        "the no-failover arm should abandon uploads into the dead region"
    )


# ---------------------------------------------------------------------------
# replication
# ---------------------------------------------------------------------------
def test_replication_bills_wan_and_snapshots_students():
    session = build_fleet(
        n_cameras=2,
        num_frames=90,
        regions=two_regions(),
        region_selector="nearest",
        replication_interval_seconds=2.0,
    )
    result = session.run()
    federation = session.federation
    assert federation.num_replication_rounds >= 1
    # only cloud-trained tenants have a cloud-side student to broadcast:
    # camera 1 runs "ams" (cloud training), the shoggoth cameras train
    # at the edge and replicate nothing
    assert set(federation.replicas) == {1}
    for state in federation.replicas.values():
        assert all(isinstance(array, np.ndarray) for array in state.values())
    # every broadcast was billed on the source region's egress meter
    replicated = sum(region.link.replication_bytes for region in federation.regions)
    assert replicated > 0.0
    assert result.wan_bytes >= replicated


def test_migrated_camera_resumes_from_replicated_weights():
    session = build_fleet(
        n_cameras=2,
        num_frames=120,
        regions=two_regions(),
        region_selector="sticky",
        region_outages=[(3.0, 20.0, 0)],
        replication_interval_seconds=1.0,
    )
    result = session.run()
    assert result.num_region_migrations >= 2
    federation = session.federation
    # the failover loaded the last pre-outage snapshot into the far
    # region's tenant: its student weights match the stored replica
    far = federation.regions[1]
    for camera_id in federation.cameras_homed_in(far):
        replica = federation.replicas.get(camera_id)
        if replica is None:
            continue
        tenant = far.cluster.tenants[camera_id]
        state = tenant.student.state_dict()
        assert set(state) == set(replica)


# ---------------------------------------------------------------------------
# accounting + validation
# ---------------------------------------------------------------------------
def test_dollar_cost_closes_over_compute_and_wan():
    session = build_fleet(
        n_cameras=4,
        regions=two_regions(),
        region_selector="cheapest",
        replication_interval_seconds=1.0,
    )
    result = session.run()
    federation = session.federation
    expected = federation.compute_dollar_cost(
        result.duration_seconds
    ) + federation.wan_dollar_cost()
    assert result.dollar_cost == pytest.approx(expected, abs=1e-9)
    assert result.wan_dollar_cost == pytest.approx(
        sum(m["wan_dollar_cost"] for m in result.region_metrics), abs=1e-12
    )
    assert result.wan_bytes == pytest.approx(
        sum(m["wan_bytes"] for m in result.region_metrics), abs=1e-9
    )


def test_region_fingerprint_block_is_conditional():
    # The region block joins the fingerprint payload only when region
    # telemetry exists: degenerate federations digest exactly like the
    # plain path, while a real federation carries (and digests) it.
    plain = build_fleet().run()
    degenerate = build_fleet(regions=[RegionSpec(name="solo")]).run()
    federated = build_fleet(regions=two_regions()).run()
    assert degenerate.region_metrics == []
    assert degenerate.fingerprint() == plain.fingerprint()
    assert federated.region_metrics
    assert federated.region_selector
    assert federated.fingerprint() != plain.fingerprint()


def test_federation_validation_errors():
    with pytest.raises(ValueError, match="at least one region"):
        Federation([])
    with pytest.raises(ValueError, match="unique"):
        Federation([RegionSpec(name="dup"), RegionSpec(name="dup")])
    with pytest.raises(ValueError, match="non-empty"):
        RegionSpec(name="")
    with pytest.raises(ValueError, match="positive"):
        Federation([RegionSpec(name="a")], replication_interval_seconds=0.0)
    with pytest.raises(ValueError, match="require regions"):
        build_fleet(region_selector="nearest")
    with pytest.raises(ValueError):
        build_fleet(regions=two_regions(), num_gpus=2)
    with pytest.raises(ValueError):
        build_fleet(regions=two_regions(), scheduler="staleness")
    with pytest.raises(ValueError, match="region"):
        # outage index out of range
        build_fleet(regions=two_regions(), region_outages=[(1.0, 2.0, 7)])
    with pytest.raises(ValueError):
        # outage interval must be ordered
        build_fleet(regions=two_regions(), region_outages=[(2.0, 1.0, 0)])
