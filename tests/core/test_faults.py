"""Chaos suite: seeded fault plans vs. the fleet's conservation laws.

Each case runs a fleet under one seeded :class:`FaultPlan` — lossy /
duplicating / delaying link, edge retry-with-backoff, cloud-side dedup,
Poisson worker crashes with supervised recovery — and asserts the
invariants that must hold *whatever* the faults do:

* **message conservation** — every distinct reliable message ends in
  exactly one of delivered / abandoned, nothing is still outstanding
  after the run drains, and duplicate or late deliveries are dropped
  and counted, never double-handled;
* **upload conservation** — distinct uploads sent == labeled + rejected
  + abandoned: faults may *lose* work (accounted as abandoned) but can
  never duplicate it or leave it untracked;
* **crash supervision** — every crash retires its victim at the crash
  instant, restarts a same-spec replacement, re-places the in-flight
  and queued jobs, and the crash counters agree with the crash log
  (and stay zero when nothing crashed);
* **capacity conservation** — the faults-era cluster still never bills
  less than it works: busy <= provisioned per worker.

The seed window rotates: ``REPRO_CHAOS_SEEDS`` sets how many plans run
(default 20; CI's nightly sweep widens it) and
``REPRO_CHAOS_SEED_OFFSET`` shifts the window (CI passes the run number
so successive nightlies explore fresh seeds).  Every case prints its
full plan in assertion messages, so a failing seed is replayable
locally with ``REPRO_CHAOS_SEED_OFFSET=<seed> REPRO_CHAOS_SEEDS=1``.
"""

from __future__ import annotations

import os

import pytest

from repro.core import FaultPlan
from repro.core.faults import ReliableChannel
from repro.runtime.events import EventScheduler, RetryTimer
from repro.runtime.journal import EventJournal
from repro.testing.scenarios import chaos_scenario, session_from_scenario

NUM_PLANS = int(os.environ.get("REPRO_CHAOS_SEEDS", "20"))
SEED_OFFSET = int(os.environ.get("REPRO_CHAOS_SEED_OFFSET", "0"))
SEEDS = [SEED_OFFSET + index for index in range(NUM_PLANS)]


def run_chaos(seed: int):
    """Build and run one chaos fleet; returns (session, result, plan).

    The plan and fleet-shape draws live in
    :mod:`repro.testing.scenarios` — the same contract the shrinker CLI
    replays, so any failing seed here is directly
    ``python -m repro.testing.shrink <seed>`` material.
    """
    session = session_from_scenario(chaos_scenario(seed))
    return session, session.run(), session.faults


@pytest.mark.parametrize("seed", SEEDS)
def test_chaos_invariants(seed):
    session, result, plan = run_chaos(seed)
    tag = f"plan[{plan.describe()}]"
    cluster = session.cluster

    # -- message conservation ----------------------------------------------
    assert result.num_messages_in_flight == 0, (
        f"{tag}: {result.num_messages_in_flight} messages still outstanding "
        "after the run drained — a retry timer was lost"
    )
    assert (
        result.num_messages_delivered + result.num_abandoned_messages
        == result.num_messages_sent
    ), (
        f"{tag}: {result.num_messages_sent} sent != "
        f"{result.num_messages_delivered} delivered + "
        f"{result.num_abandoned_messages} abandoned"
    )
    for kind, abandoned in result.abandoned_by_kind.items():
        assert 0 <= abandoned <= result.sends_by_kind[kind], (
            f"{tag}: {kind} abandoned count outside [0, sent]"
        )

    # -- upload conservation -----------------------------------------------
    sent_uploads = result.sends_by_kind["upload"]
    labeled = len(result.queue_waits)
    rejected = result.num_rejected_uploads
    abandoned = result.num_abandoned_uploads
    assert labeled + rejected + abandoned == sent_uploads, (
        f"{tag}: {sent_uploads} uploads sent but {labeled} labeled + "
        f"{rejected} rejected + {abandoned} abandoned — a fault lost or "
        "duplicated a job"
    )
    assert 0.0 <= result.label_loss_fraction <= 1.0

    # dedup is exactly-once: no job may appear in two completion logs
    all_completed = [
        job for worker in cluster.workers for job in worker.completed_jobs
    ]
    assert len({id(job) for job in all_completed}) == len(all_completed), (
        f"{tag}: a labeling job appears in two workers' completion logs"
    )
    assert all(job.wait_seconds >= -1e-9 for job in all_completed), (
        f"{tag}: negative queue delay under faults"
    )

    # -- crash supervision --------------------------------------------------
    crash_times = [record.time for record in result.crash_records]
    assert crash_times == sorted(crash_times), f"{tag}: crash log out of order"
    assert result.num_crash_recovered_jobs == sum(
        record.jobs_in_flight for record in result.crash_records
    ), f"{tag}: crash recovery counter disagrees with the crash log"
    if not result.crash_records:
        assert (
            result.num_crash_recovered_jobs == 0
            and result.crash_wasted_gpu_seconds == 0.0
        ), f"{tag}: crash accounting moved without any crash"
    if plan.crash_recovery == "checkpoint":
        assert result.crash_wasted_gpu_seconds == 0.0, (
            f"{tag}: checkpoint recovery must not waste GPU work"
        )
    for record in result.crash_records:
        victim = cluster.workers[record.worker_id]
        # no autoscaler here, so no drain race: every crash restarts
        assert record.replacement_id is not None, (
            f"{tag}: crash skipped its replacement with nothing draining"
        )
        replacement = cluster.workers[record.replacement_id]
        assert victim.crashed and victim.draining, (
            f"{tag}: crash victim {record.worker_id} not marked crashed"
        )
        assert victim.retired_at == pytest.approx(record.time), (
            f"{tag}: victim kept billing after its crash"
        )
        assert replacement.spec == victim.spec, (
            f"{tag}: replacement {record.replacement_id} has a different "
            "hardware spec than the crashed worker"
        )
        assert record.mode == plan.crash_recovery
        assert record.jobs_in_flight >= 0 and record.jobs_queued >= 0

    # -- capacity conservation ---------------------------------------------
    # a replacement provisioned by a late crash can drain the victim's
    # backlog past the nominal stream duration; it is still provisioned
    # (and billing) through that tail, so the conservation horizon must
    # cover each worker's actual busy window, not just the stream end
    for worker in cluster.workers:
        horizon = max(result.duration_seconds, worker.busy_until)
        provisioned = cluster.worker_provisioned_seconds(worker, horizon)
        assert worker.busy_seconds <= provisioned + 1e-6, (
            f"{tag}: worker {worker.worker_id} busy {worker.busy_seconds:.6f}s "
            f"exceeds its provisioned {provisioned:.6f}s"
        )
    ids = [worker.worker_id for worker in cluster.workers]
    assert ids == list(range(len(cluster.workers))), (
        f"{tag}: worker ids reused or renumbered after crash recovery: {ids}"
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_chaos_invariants_multi_region(seed):
    """The rotating window again, federated: region axes on the plan.

    Same ``REPRO_CHAOS_SEEDS`` / ``REPRO_CHAOS_SEED_OFFSET`` window as
    :func:`test_chaos_invariants`, but each seed also draws 2–3
    WAN-profiled regions, a selector and (usually) a region-outage
    process on top of partitions and an autoscaler — the full chaos
    cross.  The invariant oracle is the shrinker's own
    :func:`repro.testing.shrink.check_invariants`, so a failing seed
    here minimises directly with
    ``python -m repro.testing.shrink --partitions --autoscaler
    --regions <seed>``.
    """
    from repro.testing.shrink import check_invariants

    session = session_from_scenario(
        chaos_scenario(seed, partitions=True, autoscaler=True, regions=True)
    )
    result = session.run()
    failure = check_invariants(session, result)
    assert failure is None, (
        f"multi-region chaos seed {seed} broke the {failure!r} invariant "
        f"(plan[{session.faults.describe()}])"
    )


def test_faults_off_runs_report_no_fault_activity(fleet_factory):
    """A plain fleet run carries all-default fault fields."""
    result = fleet_factory(
        n_cameras=2, num_frames=60, datasets=["detrac"], strategies=["shoggoth"]
    ).run()
    assert result.fault_plan == "none"
    assert result.num_crashes == 0 and not result.crash_records
    assert result.num_lost_messages == 0
    assert result.num_retries == 0 and result.num_duplicate_drops == 0
    assert result.num_messages_sent == 0 and result.label_loss_fraction == 0.0


@pytest.mark.parametrize("seed", SEEDS[:3])
def test_chaos_runs_are_deterministic_and_replayable(seed):
    """Same plan + same fleet -> byte-identical journals and exact replay."""

    def build():
        return session_from_scenario(chaos_scenario(seed))

    first, second = EventJournal(), EventJournal()
    result = build().run(journal=first)
    build().run(journal=second)
    assert first.serialize() == second.serialize(), (
        f"seed {seed}: two identical chaos runs produced different journals"
    )
    report = first.replay(build)
    assert report.result.fingerprint() == result.fingerprint(), (
        f"seed {seed}: journal replay landed on a different result"
    )


def test_plan_validation_rejects_bad_parameters():
    with pytest.raises(ValueError, match="loss_rate"):
        FaultPlan(loss_rate=1.5)
    with pytest.raises(ValueError, match="must not exceed 1"):
        FaultPlan(loss_rate=0.5, duplicate_rate=0.4, delay_rate=0.3)
    with pytest.raises(ValueError, match="retry_backoff"):
        FaultPlan(retry_backoff=0.5)
    with pytest.raises(ValueError, match="max_attempts"):
        FaultPlan(max_attempts=0)
    with pytest.raises(ValueError, match="mean_time_between_crashes"):
        FaultPlan(mean_time_between_crashes=-1.0)
    with pytest.raises(ValueError, match="crash_recovery"):
        FaultPlan(crash_recovery="reboot")


def test_plan_draws_are_reproducible():
    first, second = FaultPlan(seed=4, loss_rate=0.3), FaultPlan(seed=4, loss_rate=0.3)
    assert [first.draw_verdict() for _ in range(50)] == [
        second.draw_verdict() for _ in range(50)
    ]
    plan = FaultPlan(seed=4, mean_time_between_crashes=1.0)
    assert plan.draw_crash_times(30.0) == plan.draw_crash_times(30.0)
    # crash draws must not perturb the message verdict stream
    with_crashes = FaultPlan(seed=4, loss_rate=0.3, mean_time_between_crashes=1.0)
    with_crashes.draw_crash_times(30.0)
    first.reset()
    assert [with_crashes.draw_verdict() for _ in range(20)] == [
        first.draw_verdict() for _ in range(20)
    ]


def test_reliable_channel_dedup_and_abandonment():
    """Channel unit semantics, no fleet needed: retry, dedup, abandon."""
    plan = FaultPlan(seed=0, retry_timeout_seconds=1.0, max_attempts=2)
    channel = ReliableChannel(plan)
    scheduler = EventScheduler()
    attempts: list[tuple[float, int]] = []
    message_id = channel.send(
        scheduler, "upload", 0, lambda at, mid: attempts.append((at, mid)), now=0.0
    )
    assert attempts == [(0.0, message_id)]
    assert channel.num_in_flight == 1

    # first delivery acks (cancelling the timer); the second is dropped
    assert channel.accept(message_id, scheduler)
    assert not channel.accept(message_id, scheduler)
    assert channel.num_duplicate_drops == 1
    assert channel.num_in_flight == 0
    assert len(scheduler) == 0, "delivery must cancel the pending retry timer"

    # untracked (faults-off) ids always pass
    assert channel.accept(-1, scheduler) and channel.accept(-1, scheduler)

    # an unacked message retries once, then is abandoned on the next timer
    lost_id = channel.send(
        scheduler, "labels", 1, lambda at, mid: attempts.append((at, mid)), now=0.0
    )
    first_timer = scheduler.pop()
    assert isinstance(first_timer, RetryTimer)
    channel.on_timer(first_timer, scheduler)
    assert channel.num_retries == 1
    second_timer = scheduler.pop()
    channel.on_timer(second_timer, scheduler)
    assert channel.abandoned_by_kind["labels"] == 1
    # a late copy of the abandoned id is dropped, not resurrected
    assert not channel.accept(lost_id, scheduler)
    assert channel.num_late_drops == 1
    # a stale timer (attempt number superseded) is ignored
    channel.on_timer(first_timer, scheduler)
    assert channel.num_retries == 1


def test_fault_plan_and_explicit_link_are_mutually_exclusive(fleet_factory):
    from repro.network.link import SharedLink

    with pytest.raises(ValueError, match="not both"):
        fleet_factory(
            n_cameras=1,
            num_frames=30,
            datasets=["detrac"],
            link=SharedLink(),
            faults=FaultPlan(seed=0),
        )
