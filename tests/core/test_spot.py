"""Heterogeneous + preemptible (spot) worker tests.

Four layers:

* unit tests on the new primitives — :class:`WorkerSpec` validation,
  the seeded/scripted :class:`RevocationProcess`, the cost-aware
  :class:`CheapestFeasiblePlacement` and speed-weighted load signals —
  driven with synthetic jobs and stub workers (no fleet needed);
* cluster-surgery tests for the revocation edge cases the issue names:
  revocation during a voluntary drain, revocation that would leave no
  active worker (emergency on-demand replacement), back-to-back
  revocations chasing a sticky camera's worker, and checkpoint-resume
  vs relabel-from-scratch accounting;
* end-to-end fleets with scripted traces: no upload loses its labels
  across a revocation, cost accounting splits by tier, and the
  spot-preferring :class:`SloScaler` provisions preemptible capacity;
* fail-fast validation of the new constructor knobs.
"""

from __future__ import annotations

import pytest

from repro.core import CameraSpec, CloudCluster, FleetSession
from repro.core.autoscaling import SloScaler
from repro.core.cluster import REVOCATION_MODES, RevocationProcess
from repro.core.scheduling import (
    LABELING,
    TRAINING,
    CheapestFeasiblePlacement,
    GpuJob,
    WORKER_TIERS,
    WorkerSpec,
    build_placement,
)
from repro.detection import StudentConfig, StudentDetector, TeacherConfig, TeacherDetector
from repro.runtime.events import EventScheduler, LabelingDone, RevocationEvent
from repro.video import build_dataset

from test_scheduling import make_mixed_fleet, small_config

ON_DEMAND = WorkerSpec()
SPOT = WORKER_TIERS["spot"]


def job(camera_id: int, arrival: float, service: float = 0.1, kind: str = LABELING) -> GpuJob:
    return GpuJob(kind=kind, camera_id=camera_id, arrival=arrival, service_seconds=service)


class StubWorker:
    """Minimal GpuWorkerView with a spec and a settable load."""

    def __init__(self, load: float = 0.0, spec: WorkerSpec = ON_DEMAND) -> None:
        self.load = load
        self.spec = spec

    def pending_gpu_seconds(self, now: float) -> float:
        return self.load


# ---------------------------------------------------------------------------
# WorkerSpec + RevocationProcess validation
# ---------------------------------------------------------------------------
class TestWorkerSpec:
    def test_defaults_are_nominal_on_demand(self):
        spec = WorkerSpec()
        assert spec.speed == 1.0
        assert spec.cost_per_gpu_second == 1.0
        assert not spec.preemptible
        assert spec.tier == "on_demand"
        assert SPOT.tier == "spot"

    def test_validation(self):
        with pytest.raises(ValueError, match="speed must be positive"):
            WorkerSpec(speed=0.0)
        with pytest.raises(ValueError, match="speed must be positive"):
            WorkerSpec(speed=-1.0)
        with pytest.raises(ValueError, match="cost_per_gpu_second"):
            WorkerSpec(cost_per_gpu_second=-0.1)

    def test_tier_catalog_is_consistent(self):
        for name, spec in WORKER_TIERS.items():
            assert spec.preemptible == name.startswith("spot")
            assert spec.speed > 0 and spec.cost_per_gpu_second > 0
        # the spot discount actually is a discount, per speed class
        assert (
            WORKER_TIERS["spot"].cost_per_gpu_second
            < WORKER_TIERS["on_demand"].cost_per_gpu_second
        )
        assert (
            WORKER_TIERS["spot_fast"].cost_per_gpu_second
            < WORKER_TIERS["on_demand_fast"].cost_per_gpu_second
        )


class TestRevocationProcess:
    def test_needs_exactly_one_form(self):
        with pytest.raises(ValueError, match="exactly one"):
            RevocationProcess()
        with pytest.raises(ValueError, match="exactly one"):
            RevocationProcess(mean_uptime_seconds=5.0, trace=[(1.0, 0)])
        with pytest.raises(ValueError, match="must be positive"):
            RevocationProcess(mean_uptime_seconds=0.0)
        with pytest.raises(ValueError, match=">= 0"):
            RevocationProcess(trace=[(-1.0, 0)])

    def test_seeded_draws_are_reproducible(self):
        process = RevocationProcess(mean_uptime_seconds=10.0, seed=42)
        first = [process.draw_uptime() for _ in range(5)]
        process.reset()
        again = [process.draw_uptime() for _ in range(5)]
        assert first == again
        assert all(uptime > 0 for uptime in first)
        other_seed = RevocationProcess(mean_uptime_seconds=10.0, seed=43)
        assert [other_seed.draw_uptime() for _ in range(5)] != first

    def test_scripted_trace_does_not_draw(self):
        process = RevocationProcess(trace=[(2.0, 1), (5.0, 0)])
        assert process.scripted
        with pytest.raises(RuntimeError, match="does not draw"):
            process.draw_uptime()

    def test_trace_worker_ids_must_be_non_negative(self):
        with pytest.raises(ValueError, match="worker ids must be >= 0"):
            RevocationProcess(trace=[(1.0, -2)])


# ---------------------------------------------------------------------------
# cost/speed-aware placement
# ---------------------------------------------------------------------------
class TestCheapestFeasiblePlacement:
    def test_registry_and_validation(self):
        built = build_placement("cheapest_feasible", max_pending_seconds=1.5)
        assert isinstance(built, CheapestFeasiblePlacement)
        assert built.max_pending_seconds == 1.5
        with pytest.raises(ValueError, match="max_pending_seconds"):
            CheapestFeasiblePlacement(max_pending_seconds=0.0)

    def test_prefers_cheapest_feasible_worker(self):
        policy = CheapestFeasiblePlacement(max_pending_seconds=0.5)
        workers = [StubWorker(0.1, ON_DEMAND), StubWorker(0.3, SPOT)]
        # both feasible: the spot worker is cheaper despite more load
        assert policy.place(job(0, 0.0), workers, 0.0) == 1

    def test_falls_back_to_least_loaded_when_nothing_feasible(self):
        policy = CheapestFeasiblePlacement(max_pending_seconds=0.5)
        workers = [StubWorker(2.0, ON_DEMAND), StubWorker(9.0, SPOT)]
        assert policy.place(job(0, 0.0), workers, 0.0) == 0

    def test_infeasible_cheap_worker_loses_to_feasible_expensive_one(self):
        policy = CheapestFeasiblePlacement(max_pending_seconds=0.5)
        workers = [StubWorker(0.2, ON_DEMAND), StubWorker(3.0, SPOT)]
        assert policy.place(job(0, 0.0), workers, 0.0) == 0

    def test_cost_ties_break_on_load_then_index(self):
        policy = CheapestFeasiblePlacement(max_pending_seconds=1.0)
        workers = [StubWorker(0.4, SPOT), StubWorker(0.1, SPOT), StubWorker(0.1, SPOT)]
        assert policy.place(job(0, 0.0), workers, 0.0) == 1


class TestSpeedAwareLoad:
    def make_worker(self, spec: WorkerSpec):
        """A real CloudActor, unbound: enough for the load signal."""
        from repro.core.actors import CloudActor

        worker = CloudActor(cloud=None, transport=None, queued=True, spec=spec)
        return worker

    def test_pending_seconds_weigh_queued_service_by_speed(self):
        slow = self.make_worker(WorkerSpec(speed=1.0))
        fast = self.make_worker(WorkerSpec(speed=2.0))
        for worker in (slow, fast):
            worker.queue.extend(job(0, 0.0, service=1.0) for _ in range(3))
        assert slow.pending_gpu_seconds(0.0) == pytest.approx(3.0)
        assert fast.pending_gpu_seconds(0.0) == pytest.approx(1.5)

    def test_fast_worker_finishes_busy_period_in_half_the_wall_time(self):
        fast = self.make_worker(WorkerSpec(speed=2.0))
        fast.queue.append(job(0, 0.0, service=1.0))
        scheduler = EventScheduler()
        fast.batch_overhead_seconds = 0.2
        fast._maybe_start_service(0.0, scheduler)
        # (0.2 overhead + 1.0 service) / speed 2.0 = 0.6 wall-seconds
        assert fast.busy_until == pytest.approx(0.6)
        assert fast.busy_seconds == pytest.approx(0.6)
        assert fast.pending_completion is not None
        assert fast.pending_completion.time == pytest.approx(0.6)


# ---------------------------------------------------------------------------
# cluster construction with specs / revocations
# ---------------------------------------------------------------------------
class TestClusterSpecConstruction:
    def test_single_spec_replicates_and_templates_growth(self):
        cluster = CloudCluster(num_gpus=3, worker_specs=SPOT)
        assert cluster.num_gpus == 3
        assert cluster.worker_specs == [SPOT, SPOT, SPOT]
        assert cluster._default_spec is SPOT

    def test_spec_list_fixes_the_cluster_size(self):
        cluster = CloudCluster(worker_specs=[ON_DEMAND, SPOT, SPOT])
        assert cluster.num_gpus == 3
        assert len(cluster.schedulers) == 3
        # a mixed list does NOT template growth: scale-outs default to
        # plain on-demand
        assert cluster._default_spec == WorkerSpec()

    def test_bad_spec_shapes_raise(self):
        with pytest.raises(ValueError, match="one spec per worker"):
            CloudCluster(num_gpus=2, worker_specs=[ON_DEMAND, SPOT, SPOT])
        with pytest.raises(ValueError, match="non-empty sequence"):
            CloudCluster(worker_specs=[])
        with pytest.raises(ValueError, match="non-empty sequence"):
            CloudCluster(worker_specs=["spot"])
        with pytest.raises(ValueError, match="revocation_mode"):
            CloudCluster(revocation_mode="retry")
        assert set(REVOCATION_MODES) == {"relabel", "checkpoint"}

    def test_instance_scheduler_with_spot_revocations_fails_fast(self):
        from repro.core.scheduling import FifoScheduler

        cameras = [CameraSpec("a", build_dataset("detrac", num_frames=120))]
        with pytest.raises(ValueError, match="provision replacements"):
            FleetSession(
                cameras,
                student=StudentDetector(StudentConfig(seed=5)),
                teacher=TeacherDetector(TeacherConfig(seed=9)),
                config=small_config(),
                cluster=CloudCluster(
                    num_gpus=1,
                    scheduler=FifoScheduler(),
                    worker_specs=SPOT,
                    revocations=RevocationProcess(mean_uptime_seconds=5.0),
                ),
            )

    def test_cluster_knobs_conflict_with_ready_cluster(self):
        cameras = [CameraSpec("a", build_dataset("detrac", num_frames=120))]
        student = StudentDetector(StudentConfig(seed=5))
        teacher = TeacherDetector(TeacherConfig(seed=9))
        with pytest.raises(ValueError, match="not both"):
            FleetSession(
                cameras, student=student, teacher=teacher,
                cluster=CloudCluster(num_gpus=2), worker_specs=SPOT,
            )
        # revocation_mode is a cluster knob too: silently ignoring it
        # next to a ready cluster would skew recovery comparisons
        with pytest.raises(ValueError, match="not both"):
            FleetSession(
                cameras, student=student, teacher=teacher,
                cluster=CloudCluster(num_gpus=2), revocation_mode="checkpoint",
            )


# ---------------------------------------------------------------------------
# revocation edge cases (cluster surgery on a finished fleet)
# ---------------------------------------------------------------------------
def spot_fleet_session(worker_specs, revocations=None, revocation_mode="relabel",
                       placement="least_loaded", n_cameras=4, num_frames=240):
    datasets = ["detrac", "kitti", "waymo", "stationary"]
    strategies = ["shoggoth", "ams", "shoggoth", "shoggoth"]
    cameras = [
        CameraSpec(
            name=f"cam{i}",
            dataset=build_dataset(datasets[i % 4], num_frames=num_frames),
            strategy=strategies[i % 4],
            seed=i,
        )
        for i in range(n_cameras)
    ]
    return FleetSession(
        cameras,
        student=StudentDetector(StudentConfig(seed=5)),
        teacher=TeacherDetector(TeacherConfig(seed=9)),
        config=small_config(),
        worker_specs=worker_specs,
        revocations=revocations,
        revocation_mode=revocation_mode,
        placement=placement,
    )


def rebuild_busy_worker(worker, now, scheduler, camera_ids=(0, 1), service=0.5):
    """Put a worker mid-busy-period the way _maybe_start_service would."""
    jobs = []
    for camera_id in camera_ids:
        item = job(camera_id, now - 0.1, service=service)
        item.worker_id = worker.worker_id
        item.service_start = now
        jobs.append(item)
    wall = (worker.batch_overhead_seconds + service * len(jobs)) / worker.spec.speed
    worker.busy_until = now + wall
    worker.busy_seconds += wall
    worker.pending_completion = scheduler.schedule(
        LabelingDone(time=worker.busy_until, jobs=jobs, worker_id=worker.worker_id)
    )
    return jobs


class TestRevocationEdgeCases:
    def run_session(self, num_spot=2):
        specs = [ON_DEMAND] + [SPOT] * num_spot
        session = spot_fleet_session(specs)
        session.run()
        return session

    def test_revoking_on_demand_worker_raises(self):
        session = self.run_session()
        scheduler = EventScheduler()
        scheduler.clock.advance_to(1000.0)
        with pytest.raises(ValueError, match="cannot be revoked"):
            session.cluster.on_revocation(
                RevocationEvent(time=1000.0, worker_id=0), scheduler
            )

    def test_idle_spot_worker_retires_cleanly(self):
        session = self.run_session()
        cluster = session.cluster
        scheduler = EventScheduler()
        scheduler.clock.advance_to(1000.0)
        cluster.on_revocation(RevocationEvent(time=1000.0, worker_id=1), scheduler)
        victim = cluster.workers[1]
        assert victim.revoked and victim.draining
        assert victim.retired_at == 1000.0
        assert cluster.num_active == 2
        assert cluster.num_revocations == 1
        record = cluster.revocation_log[0]
        assert record.jobs_in_flight == 0 and record.jobs_queued == 0
        assert record.wasted_gpu_seconds == 0.0
        # double revocation of the same worker is a stale draw: ignored
        cluster.on_revocation(RevocationEvent(time=1001.0, worker_id=1), scheduler)
        assert cluster.num_revocations == 1

    def test_revocation_kills_in_flight_work_and_hands_off(self):
        session = self.run_session()
        cluster = session.cluster
        scheduler = EventScheduler()
        scheduler.clock.advance_to(1000.0)
        victim = cluster.workers[1]
        survivor_ids = {0, 2}
        rebuild_busy_worker(victim, 1000.0, scheduler, camera_ids=(0, 1), service=0.5)
        victim.queue.extend(job(c, 1000.2) for c in (2, 3))
        busy_before = victim.busy_seconds
        # revoke halfway through the busy period
        cluster.on_revocation(RevocationEvent(time=1000.5, worker_id=1), scheduler)
        assert victim.revoked
        assert not victim.queue
        assert victim.pending_completion is None
        assert victim.busy_until == 1000.5
        # the un-run remainder (1001.02 - 1000.5) left the busy clock
        assert victim.busy_seconds == pytest.approx(busy_before - 0.52)
        # all four jobs (2 in-flight + 2 queued) landed on survivors
        relocated = [
            j
            for worker in cluster.workers
            if worker.worker_id in survivor_ids
            for j in list(worker.queue)
        ] + [
            j
            for worker in cluster.workers
            if worker.worker_id in survivor_ids
            for done in [worker.pending_completion]
            if done is not None
            for j in done.jobs
        ]
        assert len(relocated) == 4
        assert all(j.worker_id in survivor_ids for j in relocated)
        record = cluster.revocation_log[-1]
        assert record.jobs_in_flight == 2 and record.jobs_queued == 2
        # relabel mode: the elapsed half-period was wasted
        assert record.wasted_gpu_seconds == pytest.approx(0.5)
        assert cluster.num_relabeled_jobs == 2

    def test_revocation_during_voluntary_drain(self):
        """A worker mid-drain (in-flight tail still charging) gets revoked:
        the future retirement stamp moves up to the revocation instant."""
        session = self.run_session()
        cluster = session.cluster
        scheduler = EventScheduler()
        scheduler.clock.advance_to(1000.0)
        victim = cluster.workers[2]
        rebuild_busy_worker(victim, 1000.0, scheduler, camera_ids=(0,), service=2.0)
        drain_tail = victim.busy_until
        cluster.remove_worker(2, now=1000.0, scheduler=scheduler)
        assert victim.draining and victim.retired_at == pytest.approx(drain_tail)
        assert (drain_tail, -1) in cluster._provision_log
        # the revocation outruns the drain tail
        cluster.on_revocation(RevocationEvent(time=1000.3, worker_id=2), scheduler)
        assert victim.retired_at == 1000.3
        assert (drain_tail, -1) not in cluster._provision_log
        assert (1000.3, -1) in cluster._provision_log
        assert victim.busy_until == 1000.3  # in-flight tail killed too
        assert cluster.num_revocations == 1
        # and a revocation arriving after a drain fully finished is stale
        done_victim = cluster.workers[1]
        cluster.remove_worker(1, now=1001.0, scheduler=scheduler)
        assert done_victim.busy_until <= 1001.0 and not done_victim.queue
        cluster.on_revocation(RevocationEvent(time=1002.0, worker_id=1), scheduler)
        assert not done_victim.revoked
        assert cluster.num_revocations == 1

    def test_revoking_the_last_active_worker_provisions_emergency_capacity(self):
        session = spot_fleet_session([SPOT])  # every worker preemptible
        session.run()
        cluster = session.cluster
        scheduler = EventScheduler()
        scheduler.clock.advance_to(1000.0)
        victim = cluster.workers[0]
        victim.queue.extend(job(c, 999.9) for c in (0, 1))
        assert cluster.num_active == 1
        cluster.on_revocation(RevocationEvent(time=1000.0, worker_id=0), scheduler)
        # an emergency on-demand worker took over; ids never reused
        assert cluster.num_active == 1
        emergency = cluster.active_workers[0]
        assert emergency.worker_id == 1
        assert not emergency.spec.preemptible
        assert cluster.revocation_log[-1].emergency_worker_id == 1
        # the orphaned queue moved to the emergency worker
        in_service = len(emergency.pending_completion.jobs) if emergency.pending_completion else 0
        assert len(emergency.queue) + in_service == 2

    def test_back_to_back_revocations_chase_a_sticky_camera(self):
        """Revoke a sticky camera's worker twice in a row: the camera
        remaps deterministically each time and no jobs are lost."""
        session = spot_fleet_session([SPOT, SPOT, SPOT], placement="sticky")
        session.run()
        cluster = session.cluster
        scheduler = EventScheduler()
        scheduler.clock.advance_to(1000.0)
        placement = cluster.placement
        camera = 0
        first = placement.place(job(camera, 1000.0), cluster.active_workers, 1000.0)
        first_worker = cluster.active_workers[first]
        first_worker.queue.append(job(camera, 1000.0))
        cluster.on_revocation(
            RevocationEvent(time=1000.1, worker_id=first_worker.worker_id), scheduler
        )
        # the camera's job remapped to a surviving worker
        second = placement.place(job(camera, 1000.2), cluster.active_workers, 1000.2)
        second_worker = cluster.active_workers[second]
        assert second_worker is not first_worker
        holders = [
            worker
            for worker in cluster.workers
            if any(j.camera_id == camera for j in worker.queue)
            or (
                worker.pending_completion is not None
                and any(j.camera_id == camera for j in worker.pending_completion.jobs)
            )
        ]
        assert holders and all(not worker.revoked for worker in holders)
        # revoke the remapped worker too (back-to-back)
        cluster.on_revocation(
            RevocationEvent(time=1000.3, worker_id=holders[0].worker_id), scheduler
        )
        third = placement.place(job(camera, 1000.4), cluster.active_workers, 1000.4)
        survivor = cluster.active_workers[third]
        assert not survivor.revoked
        assert cluster.num_revocations == 2
        # migrations were recorded for the handoffs
        assert cluster._migrations.get(camera, 0) >= 1

    def test_checkpoint_resume_vs_relabel_accounting(self):
        """Checkpoint keeps the elapsed progress (no waste, shorter
        remaining service); relabel redoes everything (elapsed wasted)."""
        outcomes = {}
        for mode in REVOCATION_MODES:
            session = spot_fleet_session([ON_DEMAND, SPOT], revocation_mode=mode)
            session.run()
            cluster = session.cluster
            scheduler = EventScheduler()
            scheduler.clock.advance_to(1000.0)
            victim = cluster.workers[1]
            jobs = rebuild_busy_worker(
                victim, 1000.0, scheduler, camera_ids=(0, 1), service=0.5
            )
            # total wall = 0.02 + 2*0.5 = 1.02; revoke 75% through
            cluster.on_revocation(
                RevocationEvent(time=1000.765, worker_id=1), scheduler
            )
            outcomes[mode] = (cluster, jobs)

        relabel_cluster, relabel_jobs = outcomes["relabel"]
        checkpoint_cluster, checkpoint_jobs = outcomes["checkpoint"]
        assert relabel_cluster.num_relabeled_jobs == 2
        assert relabel_cluster.num_checkpoint_resumed_jobs == 0
        assert checkpoint_cluster.num_checkpoint_resumed_jobs == 2
        assert checkpoint_cluster.num_relabeled_jobs == 0
        # relabel: full nominal service again, elapsed wall wasted
        assert all(j.service_seconds == pytest.approx(0.5) for j in relabel_jobs)
        assert relabel_cluster.wasted_gpu_seconds == pytest.approx(0.765)
        # checkpoint: only the remaining fraction survives, nothing wasted
        assert all(
            j.service_seconds == pytest.approx(0.5 * 0.25)
            for j in checkpoint_jobs
        )
        assert checkpoint_cluster.wasted_gpu_seconds == 0.0
        # both modes re-place every interrupted job exactly once: the
        # handoff landed each on a surviving worker and restarted service
        for cluster, jobs in outcomes.values():
            assert all(not cluster.workers[j.worker_id].revoked for j in jobs)
            # the survivor restarted service with the first handoff; the
            # rest wait in its queue
            assert any(j.service_start is not None for j in jobs)
            assert cluster.revocation_log[-1].jobs_in_flight == 2

    def test_relabel_keeps_training_results_no_double_train_or_charge(self):
        """A relabel-preempted training job redoes its wall-clock but
        keeps the stashed result: the tenant's student is not fine-tuned
        a second time and per-tenant GPU-seconds are not charged twice
        (labeling jobs charge once at completion — training must too)."""
        session = spot_fleet_session([ON_DEMAND, SPOT])
        session.run()
        cluster = session.cluster
        victim = cluster.workers[1]
        scheduler = EventScheduler()
        scheduler.clock.advance_to(3000.0)
        training = job(1, 2999.9, service=0.4, kind=TRAINING)
        sentinel = object()
        training.result = sentinel  # filled when the busy period started
        training.service_start = 3000.0
        wall = (victim.batch_overhead_seconds + 0.4) / victim.spec.speed
        victim.busy_until = 3000.0 + wall
        victim.busy_seconds += wall
        victim.pending_completion = scheduler.schedule(
            LabelingDone(time=victim.busy_until, jobs=[training], worker_id=1)
        )
        charged_before = dict(cluster.gpu_seconds_by_camera)
        cluster.on_revocation(RevocationEvent(time=3000.2, worker_id=1), scheduler)
        # the result survived the relabel kill and the restart on the
        # surviving worker did not re-run _train_tenant
        assert training.result is sentinel
        assert training.service_seconds == pytest.approx(0.4)
        assert cluster.gpu_seconds_by_camera == charged_before
        # but the wall-clock redo is still paid: the survivor is busy
        survivor = cluster.workers[training.worker_id]
        assert survivor is not victim
        assert survivor.busy_until > 3000.2

    def test_trace_targeting_never_provisioned_worker_is_ignored(self):
        """A scripted entry for a worker the autoscaler never added is a
        stale scenario line, not a mid-run crash."""
        session = spot_fleet_session(
            [ON_DEMAND, SPOT],
            revocations=RevocationProcess(trace=[(2.0, 1), (3.0, 7)]),
        )
        result = session.run()
        assert result.num_revocations == 1
        assert result.revocation_records[0].worker_id == 1
        sent = sum(entry.session.num_uploads for entry in result.cameras)
        assert len(result.queue_waits) + result.num_rejected_uploads == sent

    def test_checkpoint_mode_does_not_retrain_resumed_training_jobs(self):
        session = self.run_session()
        cluster = session.cluster
        worker = cluster.workers[0]
        scheduler = EventScheduler()
        scheduler.clock.advance_to(2000.0)
        sentinel = object()
        training = job(1, 1999.9, service=0.4, kind=TRAINING)
        training.result = sentinel  # pretend the checkpoint kept it
        worker.queue.append(training)
        worker._maybe_start_service(2000.0, scheduler)
        # the stashed result survived: no second fine-tuning pass ran
        assert training.result is sentinel
        assert training.service_seconds == pytest.approx(0.4)


# ---------------------------------------------------------------------------
# end to end: scripted revocations inside a running fleet
# ---------------------------------------------------------------------------
class TestSpotFleetEndToEnd:
    def run_traced(self, mode="relabel"):
        session = spot_fleet_session(
            [ON_DEMAND, SPOT, SPOT],
            revocations=RevocationProcess(trace=[(3.0, 1), (5.0, 2)]),
            revocation_mode=mode,
        )
        return session, session.run()

    @pytest.mark.parametrize("mode", REVOCATION_MODES)
    def test_no_upload_loses_its_labels_across_revocations(self, mode):
        _, result = self.run_traced(mode)
        assert result.num_revocations == 2
        sent = sum(entry.session.num_uploads for entry in result.cameras)
        rejected = result.num_rejected_uploads
        assert len(result.queue_waits) + rejected == sent
        # both spot workers died; the on-demand worker carried the tail
        assert [record.worker_id for record in result.revocation_records] == [1, 2]
        assert all(record.time in (3.0, 5.0) for record in result.revocation_records)

    def test_cost_accounting_splits_by_tier(self):
        _, result = self.run_traced()
        duration = result.duration_seconds
        by_tier = result.gpu_seconds_by_tier
        # on-demand worker billed the whole run; each spot worker until
        # its revocation instant
        assert by_tier["on_demand"] == pytest.approx(duration)
        assert by_tier["spot"] == pytest.approx(3.0 + 5.0)
        assert result.gpu_seconds_provisioned == pytest.approx(
            sum(by_tier.values())
        )
        expected_cost = (
            ON_DEMAND.cost_per_gpu_second * duration
            + SPOT.cost_per_gpu_second * 8.0
        )
        assert result.dollar_cost == pytest.approx(expected_cost)
        assert 0.0 < result.spot_fraction < 1.0
        # cheaper than provisioning the same three workers on-demand
        assert result.dollar_cost < 3 * duration

    def test_seeded_revocations_are_deterministic(self):
        def run():
            session = spot_fleet_session(
                [ON_DEMAND, SPOT, SPOT],
                revocations=RevocationProcess(mean_uptime_seconds=4.0, seed=11),
            )
            return session.run()

        first, second = run(), run()
        assert first.num_revocations == second.num_revocations
        assert [r.time for r in first.revocation_records] == [
            r.time for r in second.revocation_records
        ]
        assert first.queue_waits == second.queue_waits
        assert first.dollar_cost == pytest.approx(second.dollar_cost)

    def test_spot_preferring_slo_scaler_provisions_spot_capacity(self):
        session = spot_fleet_session([ON_DEMAND])
        # monkey-ish: construct a fresh session with the autoscaler knob
        cameras = session.cameras
        scaler = SloScaler(
            slo_seconds=0.05,
            interval_seconds=0.5,
            window_seconds=2.0,
            cooldown_seconds=0.5,
            min_gpus=1,
            max_gpus=4,
            scale_out_spec=SPOT,
            revocation_headroom=1,
        )
        fleet = FleetSession(
            cameras,
            student=StudentDetector(StudentConfig(seed=5)),
            teacher=TeacherDetector(TeacherConfig(seed=9)),
            config=small_config(),
            autoscaler=scaler,
        )
        result = fleet.run()
        assert result.num_scale_outs >= 1
        added = result.worker_specs[1:]
        assert added and all(spec.preemptible for spec in added)
        assert result.spot_gpu_seconds > 0
        # headroom: the first breach added two spot workers at once
        first_out = [e for e in result.scaling_events if e.action == "scale_out"]
        assert len(first_out) >= 2
        assert first_out[0].time == first_out[1].time

    def test_headroom_validation(self):
        with pytest.raises(ValueError, match="revocation_headroom"):
            SloScaler(revocation_headroom=-1)
        with pytest.raises(ValueError, match="preemptible scale_out_spec"):
            SloScaler(revocation_headroom=1)
        with pytest.raises(ValueError, match="preemptible scale_out_spec"):
            SloScaler(revocation_headroom=1, scale_out_spec=ON_DEMAND)


# ---------------------------------------------------------------------------
# golden: spec-less behaviour is the all-on-demand WorkerSpec behaviour
# ---------------------------------------------------------------------------
class TestSpotGoldenCollapse:
    def test_fleet_without_spot_reports_zero_revocation_metrics(self):
        result = make_mixed_fleet().run()
        assert result.num_revocations == 0
        assert result.revocation_records == []
        assert result.num_relabeled_jobs == 0
        assert result.num_checkpoint_resumed_jobs == 0
        assert result.wasted_gpu_seconds == 0.0
        assert result.spot_fraction == 0.0
        assert result.worker_specs == [WorkerSpec()]
        assert result.gpu_seconds_by_tier == {
            "on_demand": pytest.approx(result.gpu_seconds_provisioned)
        }
        # default rate 1.0: dollars == provisioned GPU-seconds
        assert result.dollar_cost == pytest.approx(result.gpu_seconds_provisioned)
