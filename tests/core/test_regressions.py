"""Shrunk chaos regressions: every committed fixture replays, forever.

``tests/fixtures/regressions/*.json`` holds minimised failing cases the
chaos shrinker (``python -m repro.testing.shrink``) produced — each one
a tiny scenario that once broke an invariant.  This module
auto-discovers every fixture and replays it as a tier-1 case:

* fixtures minimised against a *planted* bug flag replay **red** with
  the flag planted (the recorded failure reproduces exactly) and
  **green** without it;
* fixtures captured from *real* (since fixed) failures replay green —
  the regression stays fixed;
* the minimisation metadata is re-checked, so a fixture that quietly
  stopped being minimal (or stopped reproducing) fails loudly instead
  of rotting.

Dropping a new ``.json`` into the fixtures directory is the whole
workflow for pinning a fresh chaos failure — no test code changes.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.testing import run_scenario

FIXTURE_DIR = Path(__file__).resolve().parent.parent / "fixtures" / "regressions"
FIXTURES = sorted(FIXTURE_DIR.glob("*.json"))


def load(path: Path) -> dict:
    return json.loads(path.read_text(encoding="utf-8"))


def test_the_regression_corpus_is_not_empty():
    """Discovery must find the committed corpus, or every case silently skips."""
    assert FIXTURES, f"no regression fixtures found under {FIXTURE_DIR}"


@pytest.mark.parametrize("path", FIXTURES, ids=[p.stem for p in FIXTURES])
def test_fixture_schema(path):
    fixture = load(path)
    assert fixture["version"] == 1
    assert fixture["kind"] == "chaos_regression"
    assert fixture["failure"]
    assert fixture["scenario"]["fault_plan"]
    assert fixture["shrunk"]["num_events"] >= 0
    assert fixture["original"]["num_events"] >= fixture["shrunk"]["num_events"]


@pytest.mark.parametrize("path", FIXTURES, ids=[p.stem for p in FIXTURES])
def test_fixture_replays_green_as_red(path):
    """The recorded failure reproduces with its bug, and only with it."""
    fixture = load(path)
    if fixture["planted_bug"] is not None:
        failure, _, _ = run_scenario(
            fixture["scenario"], planted_bug=fixture["planted_bug"]
        )
        assert failure == fixture["failure"], (
            f"{path.name}: recorded failure {fixture['failure']!r} no longer "
            f"reproduces under planted bug {fixture['planted_bug']!r} "
            f"(got {failure!r})"
        )
    failure, _, _ = run_scenario(fixture["scenario"])
    assert failure is None, (
        f"{path.name}: the minimised scenario fails again without its "
        f"planted bug — the {fixture['failure']!r} regression is BACK ({failure!r})"
    )


@pytest.mark.parametrize("path", FIXTURES, ids=[p.stem for p in FIXTURES])
def test_fixture_is_genuinely_minimised(path):
    """Shrunk fixtures stay small: the corpus must not rot into noise."""
    fixture = load(path)
    original = fixture["original"]["num_events"]
    shrunk = fixture["shrunk"]["num_events"]
    if original > 0:
        assert shrunk <= original / 4, (
            f"{path.name}: shrunk case kept {shrunk}/{original} events — "
            "re-shrink it (python -m repro.testing.shrink) before committing"
        )
    plan = fixture["scenario"]["fault_plan"]
    nonzero = [
        rate
        for rate in ("loss_rate", "duplicate_rate", "delay_rate")
        if plan[rate] > 0.0
    ]
    assert len(nonzero) <= 2, (
        f"{path.name}: {len(nonzero)} fault rates left non-zero — not minimal"
    )
