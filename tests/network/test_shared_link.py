"""SharedLink tests: processor-sharing capacity splitting and completion times."""

from __future__ import annotations

import pytest

from repro.network.link import LinkConfig, NetworkLink, SharedLink
from repro.network.messages import FrameBatchUpload


def upload(num_bytes: int) -> FrameBatchUpload:
    # subtract the protocol overhead so size_bytes() is exactly num_bytes
    from repro.network.messages import MESSAGE_OVERHEAD_BYTES

    return FrameBatchUpload(num_frames=1, encoded_bytes=num_bytes - MESSAGE_OVERHEAD_BYTES)


@pytest.fixture
def config() -> LinkConfig:
    # 1 Mbps both ways, 40 ms RTT: a 125_000-byte message serialises in 1 s
    return LinkConfig(uplink_kbps=1000.0, downlink_kbps=1000.0, rtt_seconds=0.04)


class TestSingleTransfer:
    def test_matches_point_to_point_link(self, config):
        shared = SharedLink(config)
        point = NetworkLink(config)
        message = upload(125_000)
        transfer = shared.begin_uplink(message, now=0.0)
        projected = shared.next_uplink_completion(0.0)
        assert projected is not None
        got_transfer, completion = projected
        assert got_transfer is transfer
        assert completion == pytest.approx(point.uplink_seconds(message))

    def test_downlink_is_independent_of_uplink(self, config):
        shared = SharedLink(config)
        shared.begin_uplink(upload(125_000), now=0.0)
        shared.begin_downlink(upload(125_000), now=0.0)
        _, up_done = shared.next_uplink_completion(0.0)
        _, down_done = shared.next_downlink_completion(0.0)
        # neither direction slows the other
        assert up_done == pytest.approx(down_done)
        assert up_done == pytest.approx(1.0 + 0.02)


class TestCapacitySplitting:
    def test_two_concurrent_transfers_take_twice_as_long(self, config):
        shared = SharedLink(config)
        shared.begin_uplink(upload(125_000), now=0.0)
        shared.begin_uplink(upload(125_000), now=0.0)
        _, completion = shared.next_uplink_completion(0.0)
        assert completion == pytest.approx(2.0 + 0.02)

    def test_late_arrival_pushes_out_existing_transfer(self, config):
        shared = SharedLink(config)
        first = shared.begin_uplink(upload(125_000), now=0.0)
        _, alone = shared.next_uplink_completion(0.0)
        assert alone == pytest.approx(1.02)
        # halfway through, a second equal transfer arrives: the remaining
        # 62.5 KB now drain at half rate -> 0.5 + 2 * 0.5 = 1.5 s drain
        shared.begin_uplink(upload(125_000), now=0.5)
        projected, completion = shared.next_uplink_completion(0.5)
        assert projected is first
        assert completion == pytest.approx(1.5 + 0.02)

    def test_completions_are_sequential_after_first_retires(self, config):
        shared = SharedLink(config)
        shared.begin_uplink(upload(125_000), now=0.0)
        second = shared.begin_uplink(upload(250_000), now=0.0)
        first_transfer, first_done = shared.next_uplink_completion(0.0)
        # equal shares: first drains at 2.0 s; second still has 125 KB left
        assert first_done == pytest.approx(2.02)
        shared.retire(first_transfer, first_done)
        remaining, second_done = shared.next_uplink_completion(first_done)
        assert remaining is second
        # after 2.02 s alone at full rate the leftover (~122.5KB) drains
        assert second_done == pytest.approx(3.02, abs=0.05)
        assert shared.active_uplinks == 1

    def test_latency_grows_with_fleet_size(self, config):
        completions = []
        for n in (1, 2, 4, 8):
            shared = SharedLink(config)
            transfers = [shared.begin_uplink(upload(12_500), now=0.0) for _ in range(n)]
            _, done = shared.next_uplink_completion(0.0)
            completions.append(done)
            assert len(transfers) == shared.active_uplinks == n
        assert completions == sorted(completions)
        assert completions[-1] > 4 * completions[0]


class TestPipeBookkeeping:
    def test_time_cannot_go_backwards(self, config):
        shared = SharedLink(config)
        shared.begin_uplink(upload(125_000), now=1.0)
        with pytest.raises(ValueError):
            shared.next_uplink_completion(0.5)

    def test_empty_pipe_has_no_completion(self, config):
        shared = SharedLink(config)
        assert shared.next_uplink_completion(0.0) is None
        assert shared.active_uplinks == 0

    def test_drained_transfer_stops_consuming_capacity(self, config):
        shared = SharedLink(config)
        small = shared.begin_uplink(upload(12_500), now=0.0)  # 0.1 s alone
        shared.begin_uplink(upload(125_000), now=0.0)
        # small drains first (equal shares -> at 0.2 s); before it is
        # retired the big transfer should already be draining at full rate
        _, small_done = shared.next_uplink_completion(0.0)
        assert small_done == pytest.approx(0.22)
        shared.retire(small, small_done)
        assert small.drained
        _, big_done = shared.next_uplink_completion(small_done)
        # big: 0.2 s at half rate (100 Kb drained) + 900 Kb at full rate
        assert big_done == pytest.approx(0.2 + 0.9 + 0.02)
