"""Tests for messages, link model and bandwidth accounting."""

from __future__ import annotations

import pytest

from repro.network import (
    BandwidthAccountant,
    FrameBatchUpload,
    LabelDownload,
    LinkConfig,
    MESSAGE_OVERHEAD_BYTES,
    MetricsReport,
    ModelDownload,
    NetworkLink,
    ResultDownload,
)


class TestMessages:
    def test_frame_batch_size(self):
        msg = FrameBatchUpload(num_frames=5, encoded_bytes=10_000)
        assert msg.size_bytes() == 10_000 + MESSAGE_OVERHEAD_BYTES

    def test_label_download_scales_with_boxes(self):
        small = LabelDownload(num_frames=3, num_boxes=2)
        large = LabelDownload(num_frames=3, num_boxes=20)
        assert large.size_bytes() > small.size_bytes()

    def test_model_download_scales_with_parameters(self):
        msg = ModelDownload(num_parameters=50_000)
        assert msg.size_bytes() == pytest.approx(200_000 + MESSAGE_OVERHEAD_BYTES, rel=0.01)

    def test_result_download_annotated_larger(self):
        assert (
            ResultDownload(num_boxes=3, annotated=True).size_bytes()
            > ResultDownload(num_boxes=3, annotated=False).size_bytes()
        )

    def test_metrics_report_small(self):
        assert MetricsReport().size_bytes() == MESSAGE_OVERHEAD_BYTES

    def test_validation(self):
        with pytest.raises(ValueError):
            FrameBatchUpload(num_frames=0, encoded_bytes=100)
        with pytest.raises(ValueError):
            LabelDownload(num_frames=-1, num_boxes=0)
        with pytest.raises(ValueError):
            ModelDownload(num_parameters=0)


class TestNetworkLink:
    def test_uplink_time_scales_with_size(self):
        link = NetworkLink(LinkConfig(uplink_kbps=1000, downlink_kbps=1000, rtt_seconds=0.0))
        small = link.uplink_seconds(FrameBatchUpload(1, 1_000))
        large = link.uplink_seconds(FrameBatchUpload(1, 100_000))
        assert large > small

    def test_transfer_time_formula(self):
        link = NetworkLink(LinkConfig(uplink_kbps=8000, downlink_kbps=8000, rtt_seconds=0.0))
        msg = FrameBatchUpload(1, 1_000_000 - MESSAGE_OVERHEAD_BYTES)
        assert link.uplink_seconds(msg) == pytest.approx(1.0)

    def test_round_trip(self):
        link = NetworkLink()
        up = FrameBatchUpload(1, 1000)
        down = LabelDownload(1, 4)
        assert link.round_trip_seconds(up, down) == pytest.approx(
            link.uplink_seconds(up) + link.downlink_seconds(down)
        )

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            LinkConfig(uplink_kbps=0)


class TestBandwidthAccounting:
    def test_totals_and_kbps(self):
        acc = BandwidthAccountant()
        acc.record_uplink(FrameBatchUpload(1, 10_000 - MESSAGE_OVERHEAD_BYTES), 0.0)
        acc.record_downlink(LabelDownload(1, 10), 1.0)
        summary = acc.summary(10.0)
        assert summary.uplink_bytes == 10_000
        assert summary.uplink_kbps == pytest.approx(10_000 * 8 / 1000 / 10)
        assert summary.downlink_kbps > 0

    def test_zero_duration_raises(self):
        with pytest.raises(ValueError):
            BandwidthAccountant().summary(0.0)

    def test_traces_bucket_by_time(self):
        acc = BandwidthAccountant()
        acc.record_uplink(FrameBatchUpload(1, 1000), 0.5)
        acc.record_uplink(FrameBatchUpload(1, 1000), 5.5)
        trace = acc.uplink_kbps_trace(10.0, bin_seconds=1.0)
        assert trace.shape == (10,)
        assert trace[0] > 0 and trace[5] > 0 and trace[3] == 0

    def test_empty_summary(self):
        summary = BandwidthAccountant().summary(5.0)
        assert summary.uplink_kbps == 0.0 and summary.downlink_kbps == 0.0
